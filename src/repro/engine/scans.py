"""The basic retrieval strategies: Tscan, Sscan, Fscan (Section 4).

    "Tscan: Full table scan (no indexes involved) - a classical sequential
     retrieval.
     Sscan: Self-sufficient index scan.
     Fscan: Fetch-needed index scan with immediate data record fetches - a
     classical indexed retrieval."

(Jscan lives in :mod:`repro.engine.jscan`.) Each scan is a
:class:`~repro.competition.process.Process`: Tscan steps one heap page at a
time, index scans one entry at a time, so tactics can interleave them at
proportional speeds and abandon them mid-run.

Scans push results into a *sink* ``(rid, row) -> bool``; a False return is
the consumer saying "enough" (EXISTS satisfied, LIMIT reached, cursor
closed) — the paper's forceful early termination.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.competition.process import Process
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.db.catalog import IndexInfo, TableSchema
from repro.engine.metrics import RetrievalTrace
from repro.errors import RetrievalError
from repro.expr.ast import Expr
from repro.expr.eval import compile_predicate
from repro.btree.tree import KeyRange, RangeCursor
from repro.storage.heap import HeapFile
from repro.storage.rid import RID

#: a delivery sink; False return requests retrieval stop
Sink = Callable[[RID, tuple], bool]

#: a compiled restriction: row -> bool (see repro.expr.eval.compile_predicate)
Predicate = Callable[[tuple], bool]


class BatchingSinkMixin:
    """Pull-based batch API for sink-driven processes.

    Every scan delivers rows by *pushing* into ``self.sink``. This mixin adds
    the complementary *pull* API: :meth:`next_batch` steps the process (via
    ``run_batch``, so batched storage paths are used) until up to
    ``max_rows`` deliveries have accumulated and returns them as a list.
    Deliveries still flow through the installed sink unchanged — the same
    steps run, the same costs are charged, and a sink returning False stops
    the scan exactly as in push mode — so batch and row consumption are
    equivalent in row sequence and :class:`CostMeter` totals.

    A step may deliver more rows than requested (Tscan steps whole pages);
    the surplus is buffered and returned by the next call, never dropped.
    """

    sink: Sink
    _pending_batch: list | None = None

    def next_batch(self, max_rows: int) -> list[tuple[RID, tuple]]:
        """Return up to ``max_rows`` delivered ``(rid, row)`` pairs.

        An empty list means the process is exhausted (finished, abandoned,
        or stopped by its consumer, with no buffered surplus left).
        """
        if max_rows < 1:
            raise ValueError("max_rows must be >= 1")
        pending = self._pending_batch
        if pending is None:
            pending = self._pending_batch = []
        if self.active and len(pending) < max_rows:
            outer = self.sink

            def capture(rid: RID, row: tuple) -> bool:
                pending.append((rid, row))
                return outer(rid, row)

            self.sink = capture
            try:
                while self.active and len(pending) < max_rows:
                    self.run_batch(max_rows - len(pending))
            finally:
                self.sink = outer
        batch = pending[:max_rows]
        del pending[:max_rows]
        return batch


class TscanProcess(BatchingSinkMixin, Process):
    """Sequential full-table scan. One step == one heap page."""

    def __init__(
        self,
        heap: HeapFile,
        schema: TableSchema,
        restriction: Expr,
        host_vars: Mapping[str, Any],
        sink: Sink,
        trace: RetrievalTrace | None = None,
        config: EngineConfig = DEFAULT_CONFIG,
        skip_rids: Callable[[RID], bool] | None = None,
        name: str = "tscan",
        predicate: Predicate | None = None,
    ) -> None:
        super().__init__(name)
        self.heap = heap
        self.schema = schema
        self.restriction = restriction
        self.host_vars = dict(host_vars)
        self.sink = sink
        self.trace = trace
        self.config = config
        #: restriction compiled once per scan — or shared across the whole
        #: plan when the caller passes a cached predicate
        self.predicate = predicate if predicate is not None else compile_predicate(
            restriction, schema.position, self.host_vars
        )
        #: RIDs to suppress (already delivered by a foreground process)
        self.skip_rids = skip_rids
        self.stopped_by_consumer = False
        self._next_page = 0
        if trace is not None:
            self.span = trace.tracer.open(
                "scan", strategy="tscan", pages=heap.page_count
            )

    def _do_step(self) -> bool:
        if self._next_page >= self.heap.page_count:
            return True
        for rid, row in self.heap.scan_page(self._next_page, self.meter):
            self.meter.charge_cpu(self.config.cpu_cost_per_record)
            if self.trace is not None:
                self.trace.counters.records_fetched += 1
            if self.skip_rids is not None and self.skip_rids(rid):
                continue
            if self.predicate(row):
                if self.trace is not None:
                    self.trace.counters.records_delivered += 1
                if not self.sink(rid, row):
                    self.stopped_by_consumer = True
                    return True
        self._next_page += 1
        return self._next_page >= self.heap.page_count

    def _do_batch(self, max_steps: int) -> tuple[int, bool]:
        """Scan up to ``max_steps`` pages using page-run reads.

        Pages are fetched in read-ahead-window-sized runs through one
        ``get_many`` call each; hit/miss charges match ``_do_step`` exactly
        for a scan that is not stopped mid-run. A consumer stop mid-run
        leaves the run's already-fetched trailing pages charged (bounded by
        ``read_ahead_window - 1`` speculative reads — see docs/performance.md).
        """
        heap = self.heap
        steps = 0
        while steps < max_steps:
            if self._next_page >= heap.page_count:
                return steps + 1, True
            run = min(
                max_steps - steps,
                heap.page_count - self._next_page,
                self.config.read_ahead_window,
            )
            for rows in heap.scan_page_run(self._next_page, run, self.meter):
                steps += 1
                for rid, row in rows:
                    self.meter.charge_cpu(self.config.cpu_cost_per_record)
                    if self.trace is not None:
                        self.trace.counters.records_fetched += 1
                    if self.skip_rids is not None and self.skip_rids(rid):
                        continue
                    if self.predicate(row):
                        if self.trace is not None:
                            self.trace.counters.records_delivered += 1
                        if not self.sink(rid, row):
                            self.stopped_by_consumer = True
                            return steps, True
                self._next_page += 1
        return steps, self._next_page >= self.heap.page_count


class SscanProcess(BatchingSinkMixin, Process):
    """Self-sufficient index scan: delivers straight from index entries.

    Requires every column the restriction and the output need to be present
    in the index. Delivered rows are full-width tuples with non-indexed
    positions left as None (the engine only routes here when nothing else
    reads them).
    """

    def __init__(
        self,
        index: IndexInfo,
        key_range: KeyRange,
        schema: TableSchema,
        restriction: Expr,
        host_vars: Mapping[str, Any],
        sink: Sink,
        trace: RetrievalTrace | None = None,
        config: EngineConfig = DEFAULT_CONFIG,
        name: str | None = None,
        predicate: Predicate | None = None,
    ) -> None:
        super().__init__(name or f"sscan:{index.name}")
        self.index = index
        self.schema = schema
        self.restriction = restriction
        self.host_vars = dict(host_vars)
        self.sink = sink
        self.trace = trace
        self.config = config
        self.stopped_by_consumer = False
        self.cursor: RangeCursor = index.btree.range_cursor(key_range, self.meter)
        self.delivered = 0
        #: restriction compiled once per scan (shared when plan-cached), so
        #: the batch and single-step paths use one callable instead of
        #: re-compiling per scan instance
        self.predicate = predicate if predicate is not None else compile_predicate(
            restriction, schema.position, self.host_vars
        )
        if trace is not None:
            self.span = trace.tracer.open(
                "scan", strategy="sscan", index=index.name
            )

    def _row_from_key(self, key: tuple) -> tuple:
        row: list[Any] = [None] * len(self.schema)
        for value, position in zip(key, self.index.positions):
            row[position] = value
        return tuple(row)

    def _do_step(self) -> bool:
        entry = self.cursor.next_entry()
        if entry is None:
            return True
        key, rid = entry
        if self.trace is not None:
            self.trace.counters.index_entries_scanned += 1
        row = self._row_from_key(key)
        if self.predicate(row):
            self.delivered += 1
            if self.trace is not None:
                self.trace.counters.records_delivered += 1
            if not self.sink(rid, row):
                self.stopped_by_consumer = True
                return True
        return False

    def _do_batch(self, max_steps: int) -> tuple[int, bool]:
        """Scan up to ``max_steps`` index entries through one bulk cursor
        pull, evaluating the scan's shared compiled restriction.

        Charges and delivered rows match ``_do_step`` exactly for a scan
        that is not stopped mid-batch; a consumer stop leaves the batch's
        already-pulled trailing entries charged (bounded by ``max_steps - 1``
        entries' CPU — see docs/performance.md).
        """
        entries = self.cursor.next_entries(max_steps)
        if not entries:
            return 1, True
        pred = self.predicate
        sink = self.sink
        positions = self.index.positions
        scratch: list[Any] = [None] * len(self.schema)
        steps = delivered = 0
        try:
            for key, rid in entries:
                steps += 1
                for value, position in zip(key, positions):
                    scratch[position] = value
                row = tuple(scratch)
                if pred(row):
                    delivered += 1
                    if not sink(rid, row):
                        self.stopped_by_consumer = True
                        return steps, True
        finally:
            self.delivered += delivered
            if self.trace is not None:
                self.trace.counters.index_entries_scanned += steps
                self.trace.counters.records_delivered += delivered
        if len(entries) < max_steps:  # the range is exhausted
            return steps + 1, True
        return steps, False


class FscanProcess(BatchingSinkMixin, Process):
    """Fetch-needed index scan with immediate record fetches.

    One step == one index entry (plus its record fetch). An optional
    *filter* (anything with ``may_contain``) can be installed at any time —
    the Sorted tactic plugs Jscan's completed filter in mid-flight to
    suppress useless fetches.
    """

    def __init__(
        self,
        index: IndexInfo,
        key_range: KeyRange,
        heap: HeapFile,
        schema: TableSchema,
        restriction: Expr,
        host_vars: Mapping[str, Any],
        sink: Sink,
        trace: RetrievalTrace | None = None,
        config: EngineConfig = DEFAULT_CONFIG,
        name: str | None = None,
        predicate: Predicate | None = None,
    ) -> None:
        super().__init__(name or f"fscan:{index.name}")
        self.index = index
        self.heap = heap
        self.schema = schema
        self.restriction = restriction
        self.host_vars = dict(host_vars)
        self.sink = sink
        self.trace = trace
        self.config = config
        self.predicate = predicate if predicate is not None else compile_predicate(
            restriction, schema.position, self.host_vars
        )
        self.stopped_by_consumer = False
        self.cursor: RangeCursor = index.btree.range_cursor(key_range, self.meter)
        #: installable RID filter (e.g. a completed Jscan bitmap)
        self.filter: Any | None = None
        self.fetched = 0
        self.rejected = 0
        self.filtered_out = 0
        self.delivered = 0
        if trace is not None:
            self.span = trace.tracer.open(
                "scan", strategy="fscan", index=index.name
            )

    def _do_step(self) -> bool:
        entry = self.cursor.next_entry()
        if entry is None:
            return True
        _, rid = entry
        if self.trace is not None:
            self.trace.counters.index_entries_scanned += 1
        if self.filter is not None and not self.filter.may_contain(rid):
            self.filtered_out += 1
            if self.trace is not None:
                self.trace.counters.rids_filtered_out += 1
            return False
        row = self.heap.fetch(rid, self.meter)
        self.fetched += 1
        self.meter.charge_cpu(self.config.cpu_cost_per_record)
        if self.trace is not None:
            self.trace.counters.records_fetched += 1
        if self.predicate(row):
            self.delivered += 1
            if self.trace is not None:
                self.trace.counters.records_delivered += 1
            if not self.sink(rid, row):
                self.stopped_by_consumer = True
                return True
        else:
            self.rejected += 1
            if self.trace is not None:
                self.trace.counters.fetches_rejected += 1
        return False


def check_self_sufficient(index: IndexInfo, needed_columns: frozenset[str]) -> None:
    """Raise unless ``index`` can serve all needed columns by itself."""
    if not index.covers(needed_columns):
        missing = set(needed_columns) - set(index.columns)
        raise RetrievalError(
            f"index {index.name!r} is not self-sufficient: missing {sorted(missing)}"
        )

"""The basic retrieval strategies: Tscan, Sscan, Fscan (Section 4).

    "Tscan: Full table scan (no indexes involved) - a classical sequential
     retrieval.
     Sscan: Self-sufficient index scan.
     Fscan: Fetch-needed index scan with immediate data record fetches - a
     classical indexed retrieval."

(Jscan lives in :mod:`repro.engine.jscan`.) Each scan is a
:class:`~repro.competition.process.Process`: Tscan steps one heap page at a
time, index scans one entry at a time, so tactics can interleave them at
proportional speeds and abandon them mid-run.

Scans push results into a *sink* ``(rid, row) -> bool``; a False return is
the consumer saying "enough" (EXISTS satisfied, LIMIT reached, cursor
closed) — the paper's forceful early termination.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.competition.process import Process
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.db.catalog import IndexInfo, TableSchema
from repro.engine.metrics import RetrievalTrace
from repro.errors import RetrievalError
from repro.expr.ast import Expr
from repro.expr.eval import evaluate
from repro.btree.tree import KeyRange, RangeCursor
from repro.storage.heap import HeapFile
from repro.storage.rid import RID

#: a delivery sink; False return requests retrieval stop
Sink = Callable[[RID, tuple], bool]


class TscanProcess(Process):
    """Sequential full-table scan. One step == one heap page."""

    def __init__(
        self,
        heap: HeapFile,
        schema: TableSchema,
        restriction: Expr,
        host_vars: Mapping[str, Any],
        sink: Sink,
        trace: RetrievalTrace | None = None,
        config: EngineConfig = DEFAULT_CONFIG,
        skip_rids: Callable[[RID], bool] | None = None,
        name: str = "tscan",
    ) -> None:
        super().__init__(name)
        self.heap = heap
        self.schema = schema
        self.restriction = restriction
        self.host_vars = dict(host_vars)
        self.sink = sink
        self.trace = trace
        self.config = config
        #: RIDs to suppress (already delivered by a foreground process)
        self.skip_rids = skip_rids
        self.stopped_by_consumer = False
        self._next_page = 0

    def _do_step(self) -> bool:
        if self._next_page >= self.heap.page_count:
            return True
        for rid, row in self.heap.scan_page(self._next_page, self.meter):
            self.meter.charge_cpu(self.config.cpu_cost_per_record)
            if self.trace is not None:
                self.trace.counters.records_fetched += 1
            if self.skip_rids is not None and self.skip_rids(rid):
                continue
            if evaluate(self.restriction, row, self.schema.position, self.host_vars):
                if self.trace is not None:
                    self.trace.counters.records_delivered += 1
                if not self.sink(rid, row):
                    self.stopped_by_consumer = True
                    return True
        self._next_page += 1
        return self._next_page >= self.heap.page_count


class SscanProcess(Process):
    """Self-sufficient index scan: delivers straight from index entries.

    Requires every column the restriction and the output need to be present
    in the index. Delivered rows are full-width tuples with non-indexed
    positions left as None (the engine only routes here when nothing else
    reads them).
    """

    def __init__(
        self,
        index: IndexInfo,
        key_range: KeyRange,
        schema: TableSchema,
        restriction: Expr,
        host_vars: Mapping[str, Any],
        sink: Sink,
        trace: RetrievalTrace | None = None,
        config: EngineConfig = DEFAULT_CONFIG,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"sscan:{index.name}")
        self.index = index
        self.schema = schema
        self.restriction = restriction
        self.host_vars = dict(host_vars)
        self.sink = sink
        self.trace = trace
        self.config = config
        self.stopped_by_consumer = False
        self.cursor: RangeCursor = index.btree.range_cursor(key_range, self.meter)
        self.delivered = 0

    def _row_from_key(self, key: tuple) -> tuple:
        row: list[Any] = [None] * len(self.schema)
        for value, position in zip(key, self.index.positions):
            row[position] = value
        return tuple(row)

    def _do_step(self) -> bool:
        entry = self.cursor.next_entry()
        if entry is None:
            return True
        key, rid = entry
        if self.trace is not None:
            self.trace.counters.index_entries_scanned += 1
        row = self._row_from_key(key)
        if evaluate(self.restriction, row, self.schema.position, self.host_vars):
            self.delivered += 1
            if self.trace is not None:
                self.trace.counters.records_delivered += 1
            if not self.sink(rid, row):
                self.stopped_by_consumer = True
                return True
        return False


class FscanProcess(Process):
    """Fetch-needed index scan with immediate record fetches.

    One step == one index entry (plus its record fetch). An optional
    *filter* (anything with ``may_contain``) can be installed at any time —
    the Sorted tactic plugs Jscan's completed filter in mid-flight to
    suppress useless fetches.
    """

    def __init__(
        self,
        index: IndexInfo,
        key_range: KeyRange,
        heap: HeapFile,
        schema: TableSchema,
        restriction: Expr,
        host_vars: Mapping[str, Any],
        sink: Sink,
        trace: RetrievalTrace | None = None,
        config: EngineConfig = DEFAULT_CONFIG,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"fscan:{index.name}")
        self.index = index
        self.heap = heap
        self.schema = schema
        self.restriction = restriction
        self.host_vars = dict(host_vars)
        self.sink = sink
        self.trace = trace
        self.config = config
        self.stopped_by_consumer = False
        self.cursor: RangeCursor = index.btree.range_cursor(key_range, self.meter)
        #: installable RID filter (e.g. a completed Jscan bitmap)
        self.filter: Any | None = None
        self.fetched = 0
        self.rejected = 0
        self.filtered_out = 0
        self.delivered = 0

    def _do_step(self) -> bool:
        entry = self.cursor.next_entry()
        if entry is None:
            return True
        _, rid = entry
        if self.trace is not None:
            self.trace.counters.index_entries_scanned += 1
        if self.filter is not None and not self.filter.may_contain(rid):
            self.filtered_out += 1
            if self.trace is not None:
                self.trace.counters.rids_filtered_out += 1
            return False
        row = self.heap.fetch(rid, self.meter)
        self.fetched += 1
        self.meter.charge_cpu(self.config.cpu_cost_per_record)
        if self.trace is not None:
            self.trace.counters.records_fetched += 1
        if evaluate(self.restriction, row, self.schema.position, self.host_vars):
            self.delivered += 1
            if self.trace is not None:
                self.trace.counters.records_delivered += 1
            if not self.sink(rid, row):
                self.stopped_by_consumer = True
                return True
        else:
            self.rejected += 1
            if self.trace is not None:
                self.trace.counters.fetches_rejected += 1
        return False


def check_self_sufficient(index: IndexInfo, needed_columns: frozenset[str]) -> None:
    """Raise unless ``index`` can serve all needed columns by itself."""
    if not index.covers(needed_columns):
        missing = set(needed_columns) - set(index.columns)
        raise RetrievalError(
            f"index {index.name!r} is not self-sufficient: missing {sorted(missing)}"
        )

"""Dynamic execution metrics.

The paper notes that "the basic concepts, operational structures, and
dynamic execution metrics have been available to the user community since
version 4.0". This module is that observability surface: every retrieval
produces a :class:`RetrievalTrace` of strategy starts, estimates,
abandonments, switches, spills, and deliveries, plus aggregate counters.
Benchmarks and tests assert on the trace; examples print it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.trace import NULL_TRACER, Tracer


class EventKind(enum.Enum):
    """Kinds of trace events emitted by the engine."""

    INITIAL_ESTIMATE = "initial-estimate"
    SHORTCUT_EMPTY = "shortcut-empty"
    SHORTCUT_SMALL_RANGE = "shortcut-small-range"
    INDEXES_ORDERED = "indexes-ordered"
    TACTIC_SELECTED = "tactic-selected"
    COMPETITION_SKIPPED = "competition-skipped"
    SCAN_START = "scan-start"
    SCAN_COMPLETE = "scan-complete"
    SCAN_ABANDONED = "scan-abandoned"
    FILTER_BUILT = "filter-built"
    SIMULTANEOUS_PAIR = "simultaneous-pair"
    REORDERED = "reordered"
    SPILL = "spill"
    TSCAN_RECOMMENDED = "tscan-recommended"
    RID_LIST_COMPLETE = "rid-list-complete"
    STRATEGY_SWITCH = "strategy-switch"
    FOREGROUND_TERMINATED = "foreground-terminated"
    FOREGROUND_BUFFER_OVERFLOW = "foreground-buffer-overflow"
    FINAL_STAGE_START = "final-stage-start"
    CONSUMER_STOPPED = "consumer-stopped"
    RETRIEVAL_COMPLETE = "retrieval-complete"


@dataclass(frozen=True)
class TraceEvent:
    """One engine event with free-form structured details."""

    kind: EventKind
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{key}={value}" for key, value in self.detail.items())
        return f"{self.kind.value}({parts})"

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable rendering (span export, JSONL sinks).

        Detail values are JSON-safe by construction for every kind the
        engine emits (strings, numbers, bools, lists of strings); anything
        exotic degrades to ``str`` rather than failing the export.
        """
        detail = {
            key: value
            if isinstance(value, (str, int, float, bool, type(None), list, tuple))
            else str(value)
            for key, value in self.detail.items()
        }
        return {"kind": self.kind.value, **detail}


@dataclass
class RetrievalCounters:
    """Aggregate per-retrieval counters."""

    records_delivered: int = 0
    records_fetched: int = 0
    fetches_rejected: int = 0
    index_entries_scanned: int = 0
    rids_filtered_out: int = 0
    scans_started: int = 0
    scans_abandoned: int = 0
    strategy_switches: int = 0


class RetrievalTrace:
    """Ordered event log plus counters for one retrieval execution.

    When a :class:`~repro.obs.trace.Tracer` is attached, every emitted
    event also lands on the tracer's current span, so the flat event log
    and the span timeline stay two views of one stream. Untraced
    retrievals share :data:`~repro.obs.trace.NULL_TRACER` (no-op spans).
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self.events: list[TraceEvent] = []
        self.counters = RetrievalCounters()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: the query's decision audit, mirrored off the tracer so the
        #: engine's decision sites reach it in one attribute hop
        #: (:data:`~repro.obs.audit.NULL_AUDIT` when auditing is off)
        self.audit = self.tracer.audit

    def emit(self, kind: EventKind, **detail: Any) -> None:
        """Record one event (and attach it to the current span)."""
        event = TraceEvent(kind, detail)
        self.events.append(event)
        self.tracer.event(event)
        self.audit.observe_event(event)
        if kind is EventKind.STRATEGY_SWITCH:
            # a switch is a span boundary in the timeline, not just a log
            # line: EXPLAIN ANALYZE renders it between the strategies it
            # separates
            self.tracer.mark("strategy-switch", **detail)

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        """All events of one kind, in order."""
        return [event for event in self.events if event.kind is kind]

    def has(self, kind: EventKind) -> bool:
        """True when at least one event of the kind was emitted."""
        return any(event.kind is kind for event in self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def format(self) -> str:
        """Multi-line human-readable rendering (used by examples)."""
        return "\n".join(f"  {index:3d}. {event}" for index, event in enumerate(self.events))

"""The statically-controlled Jscan baseline [MoHa90].

Section 6: "A similar Jscan strategy with statically set thresholds
controlling unproductive scan elimination was independently discovered and
described in [MoHa90]. The statically-controlled Jscan, however, misses an
opportunity to readjust to new, reliably determined, guaranteed best
retrieval cost, nor can it reorder the scan sequence dynamically."

This baseline therefore:

* orders indexes by *compile-time* histogram selectivity (not live descents);
* abandons a scan only when its RID list grows past a fixed threshold
  (a fraction of the table's row count), with no dynamic readjustment;
* never runs simultaneous adjacent scans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.db.table import Table
from repro.engine.final_stage import FinalStageProcess
from repro.engine.initial import JscanCandidate
from repro.engine.jscan import JscanProcess
from repro.engine.metrics import RetrievalTrace
from repro.engine.scans import TscanProcess
from repro.engine.static_optimizer import StaticOptimizer
from repro.expr.ast import Expr
from repro.expr.eval import referenced_columns
from repro.expr.normalize import conjunction_terms
from repro.expr.ranges import extract_index_restriction
from repro.storage.rid import RID


def _run(process, batch_size: int) -> None:
    """Drive a process to completion in ``batch_size``-step batches.

    The baseline has no interleaving, so each process runs solo; batched
    stepping changes only dispatch overhead, never its decisions (the
    static threshold is evaluated inside ``_do_step``).
    """
    while process.active:
        _, done = process.run_batch(max(1, batch_size))
        if done:
            return


@dataclass
class MohanExecution:
    """Outcome of one statically-thresholded Jscan retrieval."""

    rows: list[tuple]
    rids: list[RID]
    cost: float
    io: int
    trace: RetrievalTrace
    description: str


def run_static_jscan(
    table: Table,
    restriction: Expr,
    host_vars: Mapping[str, Any] | None = None,
    threshold_fraction: float = 0.10,
    limit: int | None = None,
) -> MohanExecution:
    """Execute a retrieval with the [MoHa90]-style static Jscan."""
    host_vars = dict(host_vars or {})
    trace = RetrievalTrace()
    optimizer = StaticOptimizer(table)
    terms = conjunction_terms(restriction)
    needed = frozenset(table.schema.names) | referenced_columns(restriction)

    candidates: list[tuple[float, JscanCandidate]] = []
    for index in table.indexes.values():
        if index.covers(needed):
            continue  # [MoHa90] targets fetch-needed multi-index access
        index_restriction = extract_index_restriction(terms, index.columns, host_vars)
        if not index_restriction.matched:
            continue
        selectivity = optimizer._index_selectivity(index, restriction)
        candidates.append(
            (selectivity, JscanCandidate(index=index, key_range=index_restriction.key_range))
        )
    candidates.sort(key=lambda pair: pair[0])

    rows: list[tuple] = []
    rids: list[RID] = []

    def sink(rid: RID, row: tuple) -> bool:
        rows.append(row)
        rids.append(rid)
        return limit is None or len(rows) < limit

    processes = []
    description = "static-jscan"
    if candidates:
        jscan = JscanProcess(
            [candidate for _, candidate in candidates],
            table.heap,
            table.buffer_pool,
            trace,
            table.config,
            dynamic_guaranteed_best=False,
            projection_enabled=False,
            static_rid_threshold=threshold_fraction * max(1, table.row_count),
            simultaneous=False,
            name="static-jscan",
        )
        _run(jscan, table.config.batch_size)
        processes.append(jscan)
        if jscan.empty:
            description += " -> empty"
        elif jscan.tscan_recommended:
            description += " -> tscan"
            tscan = TscanProcess(
                table.heap, table.schema, restriction, host_vars, sink, trace, table.config
            )
            _run(tscan, table.config.batch_size)
            processes.append(tscan)
        else:
            final = FinalStageProcess(
                jscan.sorted_result(), table.heap, table.schema, restriction,
                host_vars, sink, trace, table.config,
            )
            _run(final, table.config.batch_size)
            processes.append(final)
            description += f" -> final({len(final.rids)})"
    else:
        tscan = TscanProcess(
            table.heap, table.schema, restriction, host_vars, sink, trace, table.config
        )
        _run(tscan, table.config.batch_size)
        processes.append(tscan)
        description += " -> tscan(no-candidates)"

    return MohanExecution(
        rows=rows,
        rids=rids,
        cost=sum(process.meter.total for process in processes),
        io=sum(process.meter.io_total for process in processes),
        trace=trace,
        description=description,
    )

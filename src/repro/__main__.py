"""``python -m repro`` — launch the interactive SQL shell."""

import sys

from repro.shell import main

sys.exit(main())

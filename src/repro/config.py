"""Engine tuning constants.

The paper describes several knobs that control the dynamic optimizer; they are
collected here in a single dataclass so benchmarks can sweep them (e.g. the
95% switch threshold of Section 6) and tests can pin them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs for the dynamic single-table retrieval engine.

    Defaults follow the paper where it states a number, and otherwise use
    values that reproduce the qualitative behaviour the paper describes.
    """

    # --- Section 6: Jscan two-stage competition -------------------------
    #: Terminate an index scan when the projected final-retrieval cost
    #: reaches this fraction of the guaranteed best cost ("e.g. becomes 95%").
    switch_threshold: float = 0.95
    #: Direct-competition limit: an index scan is abandoned when its own scan
    #: cost exceeds this proportion of the guaranteed best cost.
    scan_cost_limit_fraction: float = 0.5
    #: Scan at least this fraction of an index range before trusting the
    #: projection enough to abandon the scan (avoids noise at scan start).
    min_projection_fraction: float = 0.05
    #: Run limited simultaneous scans of adjacent index pairs to dynamically
    #: reorder them (Section 6, "partially change the order of index scans").
    simultaneous_adjacent_scans: bool = True
    #: Replace the deterministic 95% projection threshold with the
    #: decision-theoretic posterior rule of
    #: :mod:`repro.competition.probabilistic` ([Ant91B]'s "probabilistic
    #: cost model" direction).
    probabilistic_switch: bool = False
    #: With the probabilistic rule, re-evaluate every N scanned entries
    #: (posterior integration is pricier than the threshold check).
    probabilistic_check_interval: int = 16

    # --- Section 6: hybrid RID list storage regions ---------------------
    #: "Lists up to 20 RIDs are stored in a small statically-allocated buffer."
    static_rid_buffer_size: int = 20
    #: Allocated in-memory buffer capacity (RIDs) before spilling to a
    #: temporary table + bitmap.
    allocated_rid_buffer_size: int = 4096
    #: Bitmap filter size in bits ("as small as necessary").
    bitmap_bits: int = 1 << 16
    #: RIDs per TEMP page when a list spills to a temporary table (small
    #: values make spills page out quickly — used by cancellation tests).
    temp_rids_per_page: int = 512

    # --- Section 5: initial stage ----------------------------------------
    #: A range estimate at or below this RID count is a "very short range":
    #: the initial stage stops estimating the remaining indexes immediately.
    shortcut_rid_count: int = 20
    #: Use descent-to-split-node estimation (True) or compile-time histogram
    #: estimates only (False) at start-retrieval time.
    dynamic_estimation: bool = True

    # --- Section 7: tactics ----------------------------------------------
    #: Foreground RID buffer capacity for fast-first / index-only tactics.
    foreground_buffer_size: int = 4096
    #: Foreground/background speed proportion (foreground steps per
    #: background step) for direct competition, per [Ant91B] "proportional
    #: or equal speeds".
    foreground_speed: float = 1.0
    background_speed: float = 1.0

    # --- batched execution -------------------------------------------------
    #: Engine steps executed per scheduling quantum: step generators (tactics,
    #: retrieval, SQL executor) yield control to the multi-query scheduler
    #: once per ``batch_size`` steps instead of once per step, and solo scan
    #: phases run ``batch_size`` steps in one tight ``Process.run_batch``
    #: call. ``1`` restores exact row-at-a-time interleaving; cost accounting
    #: in I/O units is identical at every setting for retrievals that run to
    #: completion (see docs/performance.md).
    batch_size: int = 64
    #: Sequential read-ahead window: Tscan page runs and final-stage RID-list
    #: probes fetch up to this many pages through one
    #: ``BufferPool.get_many``/``prefetch`` call. A consumer that stops
    #: mid-batch can leave at most ``read_ahead_window - 1`` speculative page
    #: reads charged to the requesting meter.
    read_ahead_window: int = 8

    # --- partitioned storage / scatter-gather -------------------------------
    #: Worker threads fanning one retrieval out across the partitions of a
    #: ``PARTITION BY`` table (:mod:`repro.partition`). ``1`` runs the
    #: partitions serially on the scheduler thread — the step sequence,
    #: switch decisions, and summed per-partition cost accounting are
    #: identical at every setting; workers only change *when* partition
    #: fetches run, never what they cost. The pool is shared per
    #: :class:`~repro.db.session.Database` and created lazily.
    partition_workers: int = 1
    #: Buffer-pool pages given to each partition's private pool. ``0``
    #: divides the database's ``buffer_capacity`` evenly across partitions
    #: (minimum 8 pages each), mirroring how one shared pool would be split
    #: by contention.
    partition_buffer_pages: int = 0

    # --- prepared statements / plan cache -----------------------------------
    #: Capacity (entries) of the server-wide LRU plan cache shared by every
    #: session of a :class:`~repro.db.session.Database`. A cached entry skips
    #: tokenize/parse/bind on re-execution and carries the statement's
    #: compiled-predicate cache. ``0`` disables plan caching *and* the
    #: adaptive selectivity feedback below, restoring plan-per-execution
    #: behaviour exactly.
    plan_cache_size: int = 64
    #: Record estimated-vs-actual cardinality per (table, index,
    #: predicate-signature) after each retrieval and use the learned
    #: correction to sharpen the next execution's initial estimates (tactic
    #: choice, shortcut tests, and Jscan stage-switch projections). Only
    #: inexact (descent-truncated) estimates are ever adjusted; exact counts
    #: are already ground truth. Ignored when ``plan_cache_size`` is 0.
    selectivity_feedback: bool = True
    #: EWMA weight of the newest actual/estimated observation when updating
    #: a feedback entry (1.0 = always trust the latest run).
    feedback_alpha: float = 0.5

    # --- observability ------------------------------------------------------
    #: Fraction of queries traced with a full span timeline (0.0 = tracing
    #: off, 1.0 = every query). Sampling is deterministic by submission
    #: ticket (see :func:`repro.obs.should_sample`); EXPLAIN ANALYZE forces
    #: a trace regardless of the rate. The disabled path is held to a <2%
    #: throughput budget by ``benchmarks/bench_trace_overhead.py``.
    trace_sample_rate: float = 0.0
    #: Audit every query's optimizer decisions (goal inference, tactic
    #: selection, shortcuts, stage transitions, strategy switches, feedback
    #: application) into a structured :class:`repro.obs.audit.AuditLog` and
    #: aggregate them into the server's decision metrics. Off by default —
    #: the disabled path shares the tracing <2% budget
    #: (``benchmarks/bench_audit_overhead.py``). EXPLAIN COMPETE forces an
    #: audit for its statement regardless of this flag.
    audit_enabled: bool = False
    #: Queries slower than this (wall milliseconds) are captured by the
    #: flight recorder: full span tree + decision log written to the
    #: server's ``flight_sink`` as one JSONL record. 0 disables.
    slow_query_ms: float = 0.0
    #: Audited queries whose realized regret (chosen replay cost above the
    #: best rejected alternative — only EXPLAIN COMPETE computes it) meets
    #: this threshold are captured by the flight recorder. 0 disables.
    regret_threshold: float = 0.0
    #: Engine-step budget for each counterfactual replay
    #: (:mod:`repro.obs.regret`); a replay hitting the cap is truncated and
    #: its partial cost stands as a lower bound. 0 = unbounded.
    replay_budget_steps: int = 250_000

    # --- join competition ---------------------------------------------------
    #: Race candidate join orders with pilot stages and the two-stage switch
    #: rule before committing (False = always run the estimated-best order).
    join_competition: bool = True
    #: Upper bound on enumerated left-deep join orders per query; orders are
    #: ranked by estimated cost and the tail is dropped.
    join_max_orders: int = 8
    #: How many of the best-estimated orders enter the pilot race.
    join_pilot_candidates: int = 3
    #: Engine-step budget each pilot runs before the switch rule is applied
    #: between orders (scaled by the driving table's size when larger).
    join_pilot_steps: int = 256
    #: A trailing order is abandoned when its projected total cost reaches
    #: this fraction of the leader's projected total (the join-order analogue
    #: of ``switch_threshold``).
    join_switch_threshold: float = 0.95

    # --- estimation quality -------------------------------------------------
    #: Track per-(table, index, predicate-signature) q-errors and refine
    #: self-tuning histograms from observed scan feedback
    #: (:mod:`repro.estimate`). Capture is ring-buffered and deferred, so
    #: the hot-path cost is one tuple append per completed scan.
    estimation_tracking: bool = True
    #: LRU capacity of the estimator's per-signature q-error map.
    estimator_capacity: int = 1024
    #: Bucket budget for each per-(table, index) self-tuning histogram;
    #: refinement splits the worst-q-error bucket and merges cold
    #: neighbors to stay within it.
    histogram_budget: int = 32
    #: Skip the pilot race when the competing candidates' estimates are
    #: demonstrably trustworthy (confidence at or above
    #: ``competition_confidence`` with at least
    #: ``confidence_min_observations`` observations); the skip is audited
    #: as ``DecisionKind.COMPETITION_SKIPPED`` with its confidence inputs.
    #: False restores always-compete.
    competition_gate: bool = True
    #: Confidence score in [0, 1] a signature must reach before its
    #: estimate is trusted without a race. Derived from the EWMA mean and
    #: variance of ln(q-error) plus the observation count.
    competition_confidence: float = 0.75
    #: Minimum observations of a signature before the gate may trust it —
    #: below this, compete regardless of how accurate the estimates look.
    confidence_min_observations: int = 4

    # --- continuous monitoring ---------------------------------------------
    #: Master kill-switch for the continuous-monitoring subsystem
    #: (:mod:`repro.obs.timeseries` / :mod:`repro.obs.health`). Off, the
    #: scheduler creates no time-series registry and pays nothing per
    #: quantum; ``benchmarks/bench_monitor_overhead.py`` gates the *on*
    #: path at <=2% vs off.
    monitor_enabled: bool = True
    #: Seconds between time-series samples (the registry snapshots the
    #: server's cumulative counters and derives per-interval rates:
    #: queries/sec, p50/p95 latency, hit rates, q-error, regret mass).
    #: 0 disables monitoring like the kill-switch.
    monitor_interval: float = 0.25
    #: Ring capacity of retained interval windows (240 x 0.25s = one
    #: minute of history for ``\top`` sparklines and incident bundles).
    monitor_window: int = 240
    #: EWMA weight of the newest window when updating a drift detector's
    #: baseline (small = long memory, slow to forgive a regime change).
    drift_baseline_alpha: float = 0.2
    #: A drift detector fires when its series moves this factor away from
    #: the EWMA baseline (q-error/regret/queue-wait grow above
    #: ``baseline * factor``; hit rates collapse below
    #: ``baseline / factor``).
    drift_factor: float = 2.0
    #: Windows a drift detector observes before it may fire (baseline
    #: warm-up; transient start-of-run noise never pages anyone).
    drift_min_intervals: int = 3
    #: SLO: window p95 latency at or above this many wall milliseconds is
    #: a critical health finding. 0 disables the rule.
    slo_p95_latency_ms: float = 0.0
    #: SLO: window buffer-pool hit rate below this fraction is a critical
    #: health finding. 0 disables the rule.
    slo_min_hit_rate: float = 0.0
    #: SLO: window p95 admission queue wait (scheduling quanta) at or
    #: above this is a critical health finding. 0 disables the rule.
    slo_max_queue_wait_p95: float = 0.0
    #: SLO: realized regret mass (cost units) accumulated within one
    #: window at or above this is a critical health finding. 0 disables.
    slo_regret_mass: float = 0.0

    # --- cost model --------------------------------------------------------
    #: CPU cost charged per record examined, in units of one page I/O.
    cpu_cost_per_record: float = 0.001
    #: CPU cost charged per index entry examined.
    cpu_cost_per_entry: float = 0.0002

    def with_(self, **changes) -> "EngineConfig":
        """Return a copy of this config with ``changes`` applied."""
        return replace(self, **changes)


#: Shared default configuration.
DEFAULT_CONFIG = EngineConfig()

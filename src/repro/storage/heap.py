"""Heap files: slotted pages of rows addressed by RIDs.

A heap file is the physical storage of one table. Rows are tuples; the
schema lives in the catalog layer. Scans and fetches charge I/O through the
buffer pool so Tscan cost equals the page count and random fetch cost shows
the caching effects the paper discusses.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import RecordNotFoundError, StorageError
from repro.storage.buffer_pool import BufferPool, CostMeter, NULL_METER
from repro.storage.pager import Page, PageKind
from repro.storage.rid import RID

Row = tuple


class HeapFile:
    """An append-only heap of fixed-capacity slotted pages.

    Deletions mark slots ``None``; pages are never reclaimed (matching the
    retrieval-focused scope of the paper — we need stable RIDs, not space
    management).
    """

    def __init__(self, buffer_pool: BufferPool, name: str, rows_per_page: int = 32) -> None:
        if rows_per_page < 1:
            raise StorageError("rows_per_page must be >= 1")
        self.buffer_pool = buffer_pool
        self.name = name
        self.rows_per_page = rows_per_page
        #: page ids in file order; index in this list == RID.page
        self._page_ids: list[int] = []
        self._row_count = 0

    # -- properties --------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of heap pages (== full Tscan physical read cost, cold)."""
        return len(self._page_ids)

    @property
    def row_count(self) -> int:
        """Number of live rows."""
        return self._row_count

    # -- mutation ------------------------------------------------------------

    def insert(self, row: Row, meter: CostMeter = NULL_METER) -> RID:
        """Append a row, returning its RID."""
        if not self._page_ids or self._last_page_full(meter):
            page = self.buffer_pool.allocate(
                PageKind.HEAP, owner=self.name, payload=[], meter=meter
            )
            self._page_ids.append(page.page_id)
        page_no = len(self._page_ids) - 1
        page = self.buffer_pool.get(self._page_ids[page_no], meter)
        slots: list = page.payload
        slots.append(row)
        self._row_count += 1
        return RID(page_no, len(slots) - 1)

    def insert_many(self, rows: Iterable[Row], meter: CostMeter = NULL_METER) -> list[RID]:
        """Bulk insert; returns RIDs in insertion order."""
        return [self.insert(row, meter) for row in rows]

    def delete(self, rid: RID, meter: CostMeter = NULL_METER) -> None:
        """Mark a slot empty. The RID becomes dangling."""
        page = self._page_for(rid, meter)
        slots: list = page.payload
        if rid.slot >= len(slots) or slots[rid.slot] is None:
            raise RecordNotFoundError(f"no record at {rid}")
        slots[rid.slot] = None
        self._row_count -= 1

    def update(self, rid: RID, row: Row, meter: CostMeter = NULL_METER) -> None:
        """Overwrite a slot in place."""
        page = self._page_for(rid, meter)
        slots: list = page.payload
        if rid.slot >= len(slots) or slots[rid.slot] is None:
            raise RecordNotFoundError(f"no record at {rid}")
        slots[rid.slot] = row

    # -- access --------------------------------------------------------------

    def fetch(self, rid: RID, meter: CostMeter = NULL_METER) -> Row:
        """Read one record by RID (a "data record fetch")."""
        page = self._page_for(rid, meter)
        slots: list = page.payload
        if rid.slot >= len(slots) or slots[rid.slot] is None:
            raise RecordNotFoundError(f"no record at {rid}")
        return slots[rid.slot]

    def scan(self, meter: CostMeter = NULL_METER) -> Iterator[tuple[RID, Row]]:
        """Full sequential scan: yields (RID, row) in physical order."""
        for page_no in range(len(self._page_ids)):
            for rid, row in self.scan_page(page_no, meter):
                yield rid, row

    def scan_page(self, page_no: int, meter: CostMeter = NULL_METER) -> Iterator[tuple[RID, Row]]:
        """Scan the live rows of one page (one sequential-read unit)."""
        if page_no < 0 or page_no >= len(self._page_ids):
            raise StorageError(f"heap {self.name!r} has no page {page_no}")
        page = self.buffer_pool.get(self._page_ids[page_no], meter)
        for slot, row in enumerate(page.payload):
            if row is not None:
                yield RID(page_no, slot), row

    def fetch_sorted(
        self,
        rids: Sequence[RID],
        meter: CostMeter = NULL_METER,
        keep: Callable[[Row], bool] | None = None,
    ) -> Iterator[tuple[RID, Row]]:
        """Fetch records for a *sorted* RID list, page-clustered.

        Sorted access touches each distinct page once while it stays cached,
        which is the benefit the paper credits to Jscan's offline RID list
        ("accessing several records on a single page only once").
        """
        for rid in rids:
            row = self.fetch(rid, meter)
            if keep is None or keep(row):
                yield rid, row

    # -- internals ----------------------------------------------------------

    def _page_for(self, rid: RID, meter: CostMeter) -> Page:
        if rid.page < 0 or rid.page >= len(self._page_ids):
            raise RecordNotFoundError(f"no record at {rid}")
        return self.buffer_pool.get(self._page_ids[rid.page], meter)

    def _last_page_full(self, meter: CostMeter) -> bool:
        page = self.buffer_pool.get(self._page_ids[-1], meter)
        return len(page.payload) >= self.rows_per_page

"""Heap files: slotted pages of rows addressed by RIDs.

A heap file is the physical storage of one table. Rows are tuples; the
schema lives in the catalog layer. Scans and fetches charge I/O through the
buffer pool so Tscan cost equals the page count and random fetch cost shows
the caching effects the paper discusses.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import RecordNotFoundError, StorageError
from repro.storage.buffer_pool import BufferPool, CostMeter, NULL_METER
from repro.storage.pager import Page, PageKind
from repro.storage.rid import RID

Row = tuple


class HeapFile:
    """An append-only heap of fixed-capacity slotted pages.

    Deletions mark slots ``None``; pages are never reclaimed (matching the
    retrieval-focused scope of the paper — we need stable RIDs, not space
    management).
    """

    def __init__(self, buffer_pool: BufferPool, name: str, rows_per_page: int = 32) -> None:
        if rows_per_page < 1:
            raise StorageError("rows_per_page must be >= 1")
        self.buffer_pool = buffer_pool
        self.name = name
        self.rows_per_page = rows_per_page
        #: page ids in file order; index in this list == RID.page
        self._page_ids: list[int] = []
        self._row_count = 0

    # -- properties --------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of heap pages (== full Tscan physical read cost, cold)."""
        return len(self._page_ids)

    @property
    def row_count(self) -> int:
        """Number of live rows."""
        return self._row_count

    # -- mutation ------------------------------------------------------------

    def insert(self, row: Row, meter: CostMeter = NULL_METER) -> RID:
        """Append a row, returning its RID."""
        if not self._page_ids or self._last_page_full(meter):
            page = self.buffer_pool.allocate(
                PageKind.HEAP, owner=self.name, payload=[], meter=meter
            )
            self._page_ids.append(page.page_id)
        page_no = len(self._page_ids) - 1
        page = self.buffer_pool.get(self._page_ids[page_no], meter)
        slots: list = page.payload
        slots.append(row)
        self._row_count += 1
        return RID(page_no, len(slots) - 1)

    def insert_many(self, rows: Iterable[Row], meter: CostMeter = NULL_METER) -> list[RID]:
        """Bulk insert; returns RIDs in insertion order."""
        return [self.insert(row, meter) for row in rows]

    def delete(self, rid: RID, meter: CostMeter = NULL_METER) -> None:
        """Mark a slot empty. The RID becomes dangling."""
        page = self._page_for(rid, meter)
        slots: list = page.payload
        if rid.slot >= len(slots) or slots[rid.slot] is None:
            raise RecordNotFoundError(f"no record at {rid}")
        slots[rid.slot] = None
        self._row_count -= 1

    def update(self, rid: RID, row: Row, meter: CostMeter = NULL_METER) -> None:
        """Overwrite a slot in place."""
        page = self._page_for(rid, meter)
        slots: list = page.payload
        if rid.slot >= len(slots) or slots[rid.slot] is None:
            raise RecordNotFoundError(f"no record at {rid}")
        slots[rid.slot] = row

    # -- access --------------------------------------------------------------

    def fetch(self, rid: RID, meter: CostMeter = NULL_METER) -> Row:
        """Read one record by RID (a "data record fetch")."""
        page = self._page_for(rid, meter)
        slots: list = page.payload
        if rid.slot >= len(slots) or slots[rid.slot] is None:
            raise RecordNotFoundError(f"no record at {rid}")
        return slots[rid.slot]

    def scan(self, meter: CostMeter = NULL_METER) -> Iterator[tuple[RID, Row]]:
        """Full sequential scan: yields (RID, row) in physical order."""
        for page_no in range(len(self._page_ids)):
            for rid, row in self.scan_page(page_no, meter):
                yield rid, row

    def scan_page(self, page_no: int, meter: CostMeter = NULL_METER) -> Iterator[tuple[RID, Row]]:
        """Scan the live rows of one page (one sequential-read unit)."""
        if page_no < 0 or page_no >= len(self._page_ids):
            raise StorageError(f"heap {self.name!r} has no page {page_no}")
        page = self.buffer_pool.get(self._page_ids[page_no], meter)
        for slot, row in enumerate(page.payload):
            if row is not None:
                yield RID(page_no, slot), row

    def scan_page_run(
        self, start: int, count: int, meter: CostMeter = NULL_METER
    ) -> list[list[tuple[RID, Row]]]:
        """Scan a run of pages fetched in one buffer-pool call.

        Returns one list of live ``(RID, row)`` pairs per page in the run
        ``[start, min(start+count, page_count))`` — empty pages contribute an
        empty list, so callers can count page-granular steps. The pages are
        pulled through :meth:`BufferPool.get_many`, so hits and misses are
        charged exactly as ``count`` successive :meth:`scan_page` calls would
        charge them, without per-page buffer-pool dispatch. Used by Tscan's
        batched ``_do_batch`` path.
        """
        if start < 0 or start >= len(self._page_ids):
            raise StorageError(f"heap {self.name!r} has no page {start}")
        stop = min(start + max(count, 1), len(self._page_ids))
        pages = self.buffer_pool.get_many(self._page_ids[start:stop], meter)
        return [
            [
                (RID(page_no, slot), row)
                for slot, row in enumerate(page.payload)
                if row is not None
            ]
            for page_no, page in zip(range(start, stop), pages)
        ]

    def page_id(self, page_no: int) -> int:
        """The buffer-pool page id backing heap page ``page_no``.

        Used by consumers that pin pages across scheduling quanta (the join
        hash build keeps its current read run pinned between steps).
        """
        if page_no < 0 or page_no >= len(self._page_ids):
            raise StorageError(f"heap {self.name!r} has no page {page_no}")
        return self._page_ids[page_no]

    def prefetch(
        self,
        rids: Iterable[RID],
        meter: CostMeter = NULL_METER,
        window: int | None = None,
    ) -> int:
        """Read ahead the distinct heap pages referenced by a RID run.

        Maps RIDs to their pages (dropping duplicates while preserving first
        occurrence order, and silently skipping out-of-range pages so a later
        :meth:`fetch` still raises the proper error) and hands the run to
        :meth:`BufferPool.prefetch`. Returns the number of pages physically
        read — each charged to ``meter`` as a normal miss.
        """
        seen: set[int] = set()
        page_ids: list[int] = []
        limit = len(self._page_ids)
        for rid in rids:
            page_no = rid.page
            if page_no < 0 or page_no >= limit or page_no in seen:
                continue
            seen.add(page_no)
            page_ids.append(self._page_ids[page_no])
        return self.buffer_pool.prefetch(page_ids, meter, window)

    def fetch_sorted(
        self,
        rids: Sequence[RID],
        meter: CostMeter = NULL_METER,
        keep: Callable[[Row], bool] | None = None,
    ) -> Iterator[tuple[RID, Row]]:
        """Fetch records for a *sorted* RID list, page-clustered.

        Sorted access touches each distinct page once while it stays cached,
        which is the benefit the paper credits to Jscan's offline RID list
        ("accessing several records on a single page only once").
        """
        for rid in rids:
            row = self.fetch(rid, meter)
            if keep is None or keep(row):
                yield rid, row

    # -- internals ----------------------------------------------------------

    def _page_for(self, rid: RID, meter: CostMeter) -> Page:
        if rid.page < 0 or rid.page >= len(self._page_ids):
            raise RecordNotFoundError(f"no record at {rid}")
        return self.buffer_pool.get(self._page_ids[rid.page], meter)

    def _last_page_full(self, meter: CostMeter) -> bool:
        page = self.buffer_pool.get(self._page_ids[-1], meter)
        return len(page.payload) >= self.rows_per_page

"""Hashed bitmap filters for RID-list intersection [Babb79].

Section 6: "a hashed in-memory bitmap for temporary tables" assists RID-list
intersection once lists spill out of main memory. The bitmap never produces
false negatives — a RID that was added always tests positive — so filtering
with it preserves correctness; false positives are later removed when the
filtered list is itself intersected or when the final restriction is
evaluated on fetched records.
"""

from __future__ import annotations

from typing import Iterable

from repro.storage.rid import RID


class BitmapFilter:
    """A fixed-size hashed bitmap over encoded RIDs.

    The size "is as small as necessary" (Section 6): callers pick the bit
    count from the expected list size; collisions only cost extra work, never
    wrong results.
    """

    __slots__ = ("bits", "_words", "population")

    def __init__(self, bits: int = 1 << 16) -> None:
        if bits < 8:
            raise ValueError("bitmap must have at least 8 bits")
        self.bits = bits
        self._words = bytearray(bits // 8 + 1)
        #: number of set bits is not tracked exactly; population counts adds.
        self.population = 0

    def _position(self, rid: RID) -> tuple[int, int]:
        # Multiplicative hashing (Knuth's 64-bit golden-ratio constant) with
        # a final right-shift fold: the entropy of a multiplicative hash
        # lives in the high bits, so they must be mixed down before the
        # modulo or page numbers (multiples of 2^16) would all collide.
        h = (rid.encode() * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 31
        bit = h % self.bits
        return bit >> 3, 1 << (bit & 7)

    def add(self, rid: RID) -> None:
        """Set the bit for ``rid``."""
        byte, mask = self._position(rid)
        self._words[byte] |= mask
        self.population += 1

    def add_many(self, rids: Iterable[RID]) -> None:
        """Bulk add."""
        for rid in rids:
            self.add(rid)

    def __contains__(self, rid: RID) -> bool:
        byte, mask = self._position(rid)
        return bool(self._words[byte] & mask)

    def may_contain(self, rid: RID) -> bool:
        """Alias for ``rid in bitmap`` making the probabilistic nature explicit."""
        return rid in self

    def set_bit_count(self) -> int:
        """Exact number of set bits (used in tests and fill-factor checks)."""
        return sum(bin(word).count("1") for word in self._words)

    def fill_factor(self) -> float:
        """Fraction of bits set; high values mean many false positives."""
        return self.set_bit_count() / self.bits

    @staticmethod
    def size_for(expected: int, bits_per_entry: int = 10) -> int:
        """Pick a bitmap size for an expected entry count.

        ``bits_per_entry`` = 10 keeps the fill factor under ~10% which keeps
        the false-positive rate of a single-hash bitmap near the fill factor.
        """
        return max(64, 1 << (expected * bits_per_entry - 1).bit_length()) if expected > 0 else 64

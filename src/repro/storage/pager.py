"""Simulated disk and page registry.

Every persistent structure in the engine (heap files, B-tree nodes, temporary
tables) lives on numbered pages owned by a :class:`Pager`. Reading a page is
free if it is cached by the buffer pool; a miss charges one physical I/O to
the reading process's cost meter. This reproduces the paper's cost metric
(physical I/Os) without a real disk.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import PageNotFoundError


class PageKind(enum.Enum):
    """What a page stores; used for I/O accounting breakdowns."""

    HEAP = "heap"
    INDEX = "index"
    TEMP = "temp"


@dataclass(slots=True)
class Page:
    """A simulated disk page.

    Payload is an arbitrary Python object (row list, B-tree node content,
    RID run). Pages have a fixed nominal capacity enforced by their owners,
    not by the page itself.
    """

    page_id: int
    kind: PageKind
    payload: Any = None
    #: Owning file tag, e.g. a table or index name (for traces and stats).
    owner: str = ""


@dataclass
class DiskStats:
    """Cumulative physical I/O counters for the simulated disk."""

    reads: int = 0
    writes: int = 0
    reads_by_kind: dict[PageKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in PageKind}
    )
    writes_by_kind: dict[PageKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in PageKind}
    )

    def snapshot(self) -> "DiskStats":
        """Return a copy of the current counters."""
        copy = DiskStats(reads=self.reads, writes=self.writes)
        copy.reads_by_kind = dict(self.reads_by_kind)
        copy.writes_by_kind = dict(self.writes_by_kind)
        return copy


class Pager:
    """Owns all pages of a database and counts physical I/O.

    The pager is the "disk": reads and writes here are physical. Almost all
    access should instead go through :class:`repro.storage.buffer_pool
    .BufferPool`, which caches pages and only calls into the pager on a miss.
    """

    def __init__(self) -> None:
        self._pages: dict[int, Page] = {}
        self._next_page_id = 0
        self.stats = DiskStats()
        # one simulated disk may be shared by several partition worker
        # threads (each behind its own buffer pool); page allocation and
        # the physical I/O counters are the only cross-partition state, so
        # they are the only operations that take the lock
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._pages)

    def allocate(self, kind: PageKind, owner: str = "", payload: Any = None) -> Page:
        """Create a new page and write it to disk.

        Allocation counts as one physical write (the page must reach disk).
        """
        with self._lock:
            page = Page(
                page_id=self._next_page_id, kind=kind, payload=payload, owner=owner
            )
            self._next_page_id += 1
            self._pages[page.page_id] = page
            self.stats.writes += 1
            self.stats.writes_by_kind[kind] += 1
        return page

    def read(self, page_id: int) -> Page:
        """Physically read a page; raises :class:`PageNotFoundError`."""
        try:
            page = self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None
        with self._lock:
            self.stats.reads += 1
            self.stats.reads_by_kind[page.kind] += 1
        return page

    def write(self, page: Page) -> None:
        """Physically write a page back to disk."""
        if page.page_id not in self._pages:
            raise PageNotFoundError(page.page_id)
        with self._lock:
            self._pages[page.page_id] = page
            self.stats.writes += 1
            self.stats.writes_by_kind[page.kind] += 1

    def free(self, page_id: int) -> None:
        """Drop a page (used when temporary tables are released)."""
        with self._lock:
            self._pages.pop(page_id, None)

    def exists(self, page_id: int) -> bool:
        """True if the page is currently allocated."""
        return page_id in self._pages

    def peek(self, page_id: int) -> Page:
        """Read a page without charging I/O or touching any cache.

        For invariant checks and test oracles only — query execution must go
        through the buffer pool so costs are attributed.
        """
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None

    def pages_of(self, owner: str) -> Iterator[Page]:
        """Iterate pages belonging to ``owner`` without charging I/O.

        Intended for assertions and tests, not for query execution.
        """
        for page in self._pages.values():
            if page.owner == owner:
                yield page

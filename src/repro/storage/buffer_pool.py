"""LRU buffer pool with per-process cost attribution.

The paper's dynamic optimizer charges each competing strategy for the
physical I/O it causes. The pool therefore takes a :class:`CostMeter` on
every access: hits are (almost) free, misses charge one I/O to the meter.

The pool also provides the *cache interference* hook the paper discusses in
Section 3(c): "the pattern of caching the disk pages is influenced by many
asynchronous processes totally unrelated to a given retrieval". Benchmarks
inject interference by evicting random pages between steps.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import random

from repro.storage.pager import Page, Pager, PageKind


@dataclass
class CostMeter:
    """Accumulates the cost charged to one process/strategy.

    Costs are in units of one physical page I/O. CPU work is charged in
    small fractions of that unit so that ties between otherwise equal plans
    break in favour of less CPU work, as in the paper's cost model.
    """

    name: str = ""
    io_reads: int = 0
    io_writes: int = 0
    buffer_hits: int = 0
    cpu: float = 0.0
    #: breakdown of read misses per page kind
    reads_by_kind: dict[PageKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in PageKind}
    )

    @property
    def total(self) -> float:
        """Total cost: physical I/Os plus fractional CPU cost."""
        return self.io_reads + self.io_writes + self.cpu

    @property
    def io_total(self) -> int:
        """Physical I/O count only (paper's headline metric)."""
        return self.io_reads + self.io_writes

    def charge_cpu(self, amount: float) -> None:
        """Charge ``amount`` page-I/O-equivalents of CPU work."""
        self.cpu += amount

    def merge(self, other: "CostMeter") -> None:
        """Fold another meter's charges into this one."""
        self.io_reads += other.io_reads
        self.io_writes += other.io_writes
        self.buffer_hits += other.buffer_hits
        self.cpu += other.cpu
        for kind, count in other.reads_by_kind.items():
            self.reads_by_kind[kind] += count

    def snapshot(self) -> "CostMeter":
        """Return a copy of the current charges."""
        copy = CostMeter(name=self.name)
        copy.merge(self)
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostMeter({self.name!r}, reads={self.io_reads}, "
            f"writes={self.io_writes}, hits={self.buffer_hits}, cpu={self.cpu:.3f})"
        )


#: Meter used when the caller does not care about attribution.
NULL_METER = CostMeter(name="<null>")


@dataclass
class OwnerCacheStats:
    """Cumulative hit/miss counts attributed to one cache owner.

    Owners are the multi-query server's sessions: the scheduler tags the
    pool with the session whose query is about to step, so emergent cache
    interference between concurrent sessions becomes measurable per session.
    """

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total attributed page reads."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of this owner's accesses served from cache."""
        return self.hits / self.accesses if self.accesses else 0.0


class BufferPool:
    """A fixed-capacity LRU page cache over a :class:`Pager`.

    All engine page access goes through :meth:`get`. The pool is shared by
    all processes of a retrieval (and between retrievals), so the cache state
    itself is a source of the cost uncertainty the paper exploits.
    """

    def __init__(self, pager: Pager, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        self.pager = pager
        self.capacity = capacity
        self._cache: OrderedDict[int, Page] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: accounting tag set by the scheduler around every query step;
        #: ``None`` means unattributed (direct single-query use)
        self.current_owner: str | None = None
        self.owner_stats: dict[str, OwnerCacheStats] = {}

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def stats_for(self, owner: str) -> OwnerCacheStats:
        """The (created-on-demand) hit/miss stats of one owner."""
        stats = self.owner_stats.get(owner)
        if stats is None:
            stats = self.owner_stats[owner] = OwnerCacheStats()
        return stats

    def get(self, page_id: int, meter: CostMeter = NULL_METER) -> Page:
        """Fetch a page, charging ``meter`` one read on a miss."""
        page = self._cache.get(page_id)
        if page is not None:
            self._cache.move_to_end(page_id)
            self.hits += 1
            meter.buffer_hits += 1
            if self.current_owner is not None:
                self.stats_for(self.current_owner).hits += 1
            return page
        page = self.pager.read(page_id)
        self.misses += 1
        meter.io_reads += 1
        meter.reads_by_kind[page.kind] += 1
        if self.current_owner is not None:
            self.stats_for(self.current_owner).misses += 1
        self._admit(page)
        return page

    def put(self, page: Page, meter: CostMeter = NULL_METER) -> None:
        """Write a page through the cache, charging one write."""
        self.pager.write(page)
        meter.io_writes += 1
        self._admit(page)

    def allocate(
        self,
        kind: PageKind,
        owner: str = "",
        payload: object = None,
        meter: CostMeter = NULL_METER,
    ) -> Page:
        """Allocate a new page through the cache, charging one write."""
        page = self.pager.allocate(kind, owner=owner, payload=payload)
        meter.io_writes += 1
        self._admit(page)
        return page

    def _admit(self, page: Page) -> None:
        self._cache[page.page_id] = page
        self._cache.move_to_end(page.page_id)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)

    # -- cache management -------------------------------------------------

    def evict(self, page_id: int) -> None:
        """Drop one page from the cache if present."""
        self._cache.pop(page_id, None)

    def clear(self) -> None:
        """Empty the cache (cold-start benchmarks)."""
        self._cache.clear()

    def evict_random(self, fraction: float, rng: random.Random) -> int:
        """Simulate cache interference from unrelated queries.

        Evicts roughly ``fraction`` of cached pages chosen uniformly at
        random. Returns the number of evicted pages.
        """
        if not self._cache or fraction <= 0:
            return 0
        count = max(1, int(len(self._cache) * min(fraction, 1.0)))
        victims = rng.sample(list(self._cache.keys()), count)
        for page_id in victims:
            del self._cache[page_id]
        return count

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served from cache (0 when no accesses)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

"""LRU buffer pool with per-process cost attribution.

The paper's dynamic optimizer charges each competing strategy for the
physical I/O it causes. The pool therefore takes a :class:`CostMeter` on
every access: hits are (almost) free, misses charge one I/O to the meter.

Batch execution adds two bulk entry points: :meth:`BufferPool.get_many`
fetches a run of pages in one call with accounting identical to the same
sequence of :meth:`BufferPool.get` calls, and :meth:`BufferPool.prefetch`
is the sequential read-ahead path — it loads only the *uncached* pages of a
run (bounded by a configurable window, default 8), charging the requesting
meter and current owner for exactly the physical reads it performs.

The pool also provides the *cache interference* hook the paper discusses in
Section 3(c): "the pattern of caching the disk pages is influenced by many
asynchronous processes totally unrelated to a given retrieval". Benchmarks
inject interference by evicting random pages between steps.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import random

from repro.storage.pager import Page, Pager, PageKind


@dataclass(slots=True)
class CostMeter:
    """Accumulates the cost charged to one process/strategy.

    Costs are in units of one physical page I/O. CPU work is charged in
    small fractions of that unit so that ties between otherwise equal plans
    break in favour of less CPU work, as in the paper's cost model.
    """

    name: str = ""
    io_reads: int = 0
    io_writes: int = 0
    buffer_hits: int = 0
    cpu: float = 0.0
    #: breakdown of read misses per page kind
    reads_by_kind: dict[PageKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in PageKind}
    )

    @property
    def total(self) -> float:
        """Total cost: physical I/Os plus fractional CPU cost."""
        return self.io_reads + self.io_writes + self.cpu

    @property
    def io_total(self) -> int:
        """Physical I/O count only (paper's headline metric)."""
        return self.io_reads + self.io_writes

    def charge_read(self, kind: PageKind) -> None:
        """Charge one physical page read of the given kind."""
        self.io_reads += 1
        self.reads_by_kind[kind] += 1

    def charge_write(self) -> None:
        """Charge one physical page write."""
        self.io_writes += 1

    def charge_hit(self) -> None:
        """Record one buffer-pool hit (free in I/O units)."""
        self.buffer_hits += 1

    def charge_cpu(self, amount: float) -> None:
        """Charge ``amount`` page-I/O-equivalents of CPU work."""
        self.cpu += amount

    def merge(self, other: "CostMeter") -> None:
        """Fold another meter's charges into this one."""
        self.io_reads += other.io_reads
        self.io_writes += other.io_writes
        self.buffer_hits += other.buffer_hits
        self.cpu += other.cpu
        for kind, count in other.reads_by_kind.items():
            self.reads_by_kind[kind] += count

    def snapshot(self) -> "CostMeter":
        """Return a copy of the current charges."""
        copy = CostMeter(name=self.name)
        copy.merge(self)
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostMeter({self.name!r}, reads={self.io_reads}, "
            f"writes={self.io_writes}, hits={self.buffer_hits}, cpu={self.cpu:.3f})"
        )


class NullMeter(CostMeter):
    """A meter that discards every charge.

    Used where the caller does not care about attribution. A plain shared
    :class:`CostMeter` would silently *accumulate* charges from every
    unmetered call site for the life of the process — a hazard for any code
    that later reads the shared instance — so the null object genuinely
    drops charges instead: all its counters stay zero forever.
    """

    __slots__ = ()

    def charge_read(self, kind: PageKind) -> None:
        pass

    def charge_write(self) -> None:
        pass

    def charge_hit(self) -> None:
        pass

    def charge_cpu(self, amount: float) -> None:
        pass

    def merge(self, other: "CostMeter") -> None:
        pass


#: Meter used when the caller does not care about attribution. All charge
#: methods are no-ops, so sharing one instance is safe.
NULL_METER = NullMeter(name="<null>")


@dataclass(slots=True)
class OwnerCacheStats:
    """Cumulative hit/miss counts attributed to one cache owner.

    Owners are the multi-query server's sessions: the scheduler tags the
    pool with the session whose query is about to step, so emergent cache
    interference between concurrent sessions becomes measurable per session.
    """

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total attributed page reads."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of this owner's accesses served from cache."""
        return self.hits / self.accesses if self.accesses else 0.0


class BufferPool:
    """A fixed-capacity LRU page cache over a :class:`Pager`.

    All engine page access goes through :meth:`get` (or the batched
    :meth:`get_many`/:meth:`prefetch`). The pool is shared by all processes
    of a retrieval (and between retrievals), so the cache state itself is a
    source of the cost uncertainty the paper exploits.
    """

    def __init__(
        self, pager: Pager, capacity: int = 256, read_ahead_window: int = 8
    ) -> None:
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        if read_ahead_window < 1:
            raise ValueError("read-ahead window must be >= 1")
        self.pager = pager
        self.capacity = capacity
        #: default cap on physical reads per :meth:`prefetch` call
        self.read_ahead_window = read_ahead_window
        self._cache: OrderedDict[int, Page] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: physical reads issued by the read-ahead path (subset of misses)
        self.prefetched = 0
        #: optional histogram recording each read-ahead run's loaded page
        #: count (anything with ``record(value)``); installed by the
        #: server's metrics registry so run-length distributions are
        #: observable without the pool importing the metrics layer
        self.run_hist = None
        #: accounting tag set by the scheduler around every query step;
        #: ``None`` means unattributed (direct single-query use)
        self.current_owner: str | None = None
        self.owner_stats: dict[str, OwnerCacheStats] = {}
        #: pin refcounts by page id: pinned pages are never chosen as LRU
        #: or interference-eviction victims. The batch read paths pin their
        #: in-flight run so admitting page N of a run can never evict page 1
        #: of the same run, and an interference tick landing mid-run cannot
        #: drop pages the run is about to return.
        self._pinned: dict[int, int] = {}

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def stats_for(self, owner: str) -> OwnerCacheStats:
        """The (created-on-demand) hit/miss stats of one owner."""
        stats = self.owner_stats.get(owner)
        if stats is None:
            stats = self.owner_stats[owner] = OwnerCacheStats()
        return stats

    def get(self, page_id: int, meter: CostMeter = NULL_METER) -> Page:
        """Fetch a page, charging ``meter`` one read on a miss."""
        page = self._cache.get(page_id)
        if page is not None:
            self._cache.move_to_end(page_id)
            self.hits += 1
            meter.charge_hit()
            if self.current_owner is not None:
                self.stats_for(self.current_owner).hits += 1
            return page
        page = self.pager.read(page_id)
        self.misses += 1
        meter.charge_read(page.kind)
        if self.current_owner is not None:
            self.stats_for(self.current_owner).misses += 1
        self._admit(page)
        return page

    def get_many(
        self, page_ids: Sequence[int], meter: CostMeter = NULL_METER
    ) -> list[Page]:
        """Fetch a run of pages in one call.

        Accounting is byte-identical to calling :meth:`get` once per page in
        order — hits and misses are charged per page — so batched scans cost
        exactly what their row-at-a-time equivalents would.
        """
        cache = self._cache
        pages: list[Page] = []
        for page_id in page_ids:
            self.pin(page_id)
        try:
            for page_id in page_ids:
                page = cache.get(page_id)
                if page is not None:
                    cache.move_to_end(page_id)
                    self.hits += 1
                    meter.charge_hit()
                    if self.current_owner is not None:
                        self.stats_for(self.current_owner).hits += 1
                else:
                    page = self.pager.read(page_id)
                    self.misses += 1
                    meter.charge_read(page.kind)
                    if self.current_owner is not None:
                        self.stats_for(self.current_owner).misses += 1
                    self._admit(page)
                pages.append(page)
        finally:
            for page_id in page_ids:
                self.unpin(page_id)
        return pages

    def prefetch(
        self,
        page_ids: Iterable[int],
        meter: CostMeter = NULL_METER,
        window: int | None = None,
    ) -> int:
        """Sequential read-ahead: load the uncached pages of a run.

        Reads at most ``window`` (default: the pool's configured
        ``read_ahead_window``) uncached pages, charging each physical read
        to ``meter`` and to the current owner's miss count. Pages already
        cached are left untouched — no hit is charged and their LRU recency
        does not change, so a later :meth:`get` observes the same totals a
        row-at-a-time access sequence would in I/O units (buffer *hits* may
        be higher, since prefetched pages hit on their subsequent get).
        Returns the number of pages physically read.
        """
        cap = self.read_ahead_window if window is None else window
        loaded = 0
        run: list[int] = []
        try:
            for page_id in page_ids:
                if loaded >= cap:
                    break
                if page_id in self._cache:
                    continue
                page = self.pager.read(page_id)
                self.misses += 1
                self.prefetched += 1
                meter.charge_read(page.kind)
                if self.current_owner is not None:
                    self.stats_for(self.current_owner).misses += 1
                self._admit(page)
                self.pin(page_id)
                run.append(page_id)
                loaded += 1
        finally:
            for page_id in run:
                self.unpin(page_id)
        if loaded and self.run_hist is not None:
            self.run_hist.record(loaded)
        return loaded

    def put(self, page: Page, meter: CostMeter = NULL_METER) -> None:
        """Write a page through the cache, charging one write."""
        self.pager.write(page)
        meter.charge_write()
        self._admit(page)

    def allocate(
        self,
        kind: PageKind,
        owner: str = "",
        payload: object = None,
        meter: CostMeter = NULL_METER,
    ) -> Page:
        """Allocate a new page through the cache, charging one write."""
        page = self.pager.allocate(kind, owner=owner, payload=payload)
        meter.charge_write()
        self._admit(page)
        return page

    def _admit(self, page: Page) -> None:
        self._cache[page.page_id] = page
        self._cache.move_to_end(page.page_id)
        self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        """Drop unpinned pages in LRU order until within capacity.

        When every resident page is pinned the pool is allowed to run
        transiently over capacity (a pinned run longer than the pool);
        :meth:`unpin` shrinks it back as pins release.
        """
        excess = len(self._cache) - self.capacity
        if excess <= 0:
            return
        victims: list[int] = []
        for page_id in self._cache:  # LRU first
            if page_id not in self._pinned:
                victims.append(page_id)
                if len(victims) >= excess:
                    break
        for page_id in victims:
            del self._cache[page_id]

    # -- pinning ----------------------------------------------------------

    def pin(self, page_id: int) -> None:
        """Protect a page from LRU and interference eviction (refcounted)."""
        self._pinned[page_id] = self._pinned.get(page_id, 0) + 1

    def unpin(self, page_id: int) -> None:
        """Release one pin; the last release makes the page evictable again
        (and shrinks any transient over-capacity the pin caused)."""
        count = self._pinned.get(page_id, 0)
        if count <= 1:
            self._pinned.pop(page_id, None)
            self._evict_over_capacity()
        else:
            self._pinned[page_id] = count - 1

    def pinned(self, page_id: int) -> bool:
        """True while at least one pin holds the page."""
        return page_id in self._pinned

    # -- cache management -------------------------------------------------

    def evict(self, page_id: int) -> None:
        """Forcibly drop one page from the cache if present.

        This is the DDL path (drop table/index frees the page outright), so
        it clears any pins along with the page — unlike LRU and
        interference eviction, which both respect pins.
        """
        self._cache.pop(page_id, None)
        self._pinned.pop(page_id, None)

    def clear(self) -> None:
        """Empty the cache (cold-start benchmarks). Pins do not survive."""
        self._cache.clear()
        self._pinned.clear()

    def evict_random(self, fraction: float, rng: random.Random) -> int:
        """Simulate cache interference from unrelated queries.

        Evicts roughly ``fraction`` of the *evictable* (unpinned) cached
        pages chosen uniformly at random. Pages pinned by an in-flight
        batch read — or by a join hash build holding its current run across
        scheduling quanta — are never victims, and they no longer dilute
        the tick either: victims are sampled among unpinned pages only, so
        the interference rate stays constant instead of silently dropping
        toward zero as pins accumulate. Returns the number of pages
        actually evicted.

        In the common no-pins case victims are chosen by *index* into the
        cache's iteration order, so no copy of the full key list is
        materialized per call (this runs inside benchmark interference
        loops, once per engine step).
        """
        if not self._cache or fraction <= 0:
            return 0
        if not self._pinned:
            size = len(self._cache)
            count = max(1, int(size * min(fraction, 1.0)))
            wanted = set(rng.sample(range(size), count))
            victims = [
                page_id
                for position, page_id in enumerate(self._cache)
                if position in wanted
            ]
        else:
            eligible = [
                page_id for page_id in self._cache if page_id not in self._pinned
            ]
            if not eligible:
                return 0
            count = min(len(eligible),
                        max(1, int(len(eligible) * min(fraction, 1.0))))
            victims = rng.sample(eligible, count)
        for page_id in victims:
            del self._cache[page_id]
        return len(victims)

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served from cache (0 when no accesses)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

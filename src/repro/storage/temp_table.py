"""Temporary spill tables for large RID lists.

Section 6: each index scan "writes [the RID list] into a temporary table upon
buffer overflow". A temp table is a sequence of TEMP pages, each holding a
run of RIDs. Writing and re-reading charge I/O like any other page, which is
what makes spilling genuinely more expensive than staying in memory and
motivates the hybrid storage regions.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.storage.buffer_pool import BufferPool, CostMeter, NULL_METER
from repro.storage.pager import PageKind
from repro.storage.rid import RID


class TempTable:
    """An append-only on-"disk" sequence of RIDs with buffered writes."""

    def __init__(
        self,
        buffer_pool: BufferPool,
        name: str,
        rids_per_page: int = 512,
    ) -> None:
        self.buffer_pool = buffer_pool
        self.name = name
        self.rids_per_page = rids_per_page
        self._page_ids: list[int] = []
        self._write_buffer: list[RID] = []
        self._count = 0
        self._released = False

    def __len__(self) -> int:
        return self._count

    @property
    def page_count(self) -> int:
        """Pages written so far (excludes the unflushed tail buffer)."""
        return len(self._page_ids)

    def append(self, rid: RID, meter: CostMeter = NULL_METER) -> None:
        """Append one RID, flushing a full page run when needed."""
        if self._released:
            raise RuntimeError(f"temp table {self.name!r} already released")
        self._write_buffer.append(rid)
        self._count += 1
        if len(self._write_buffer) >= self.rids_per_page:
            self._flush(meter)

    def extend(self, rids: Iterable[RID], meter: CostMeter = NULL_METER) -> None:
        """Append many RIDs."""
        for rid in rids:
            self.append(rid, meter)

    def _flush(self, meter: CostMeter) -> None:
        if not self._write_buffer:
            return
        page = self.buffer_pool.allocate(
            PageKind.TEMP, owner=self.name, payload=list(self._write_buffer), meter=meter
        )
        self._page_ids.append(page.page_id)
        self._write_buffer.clear()

    def scan(self, meter: CostMeter = NULL_METER) -> Iterator[RID]:
        """Read back all RIDs in insertion order (charges page reads).

        Pages are read in read-ahead-window-sized runs through one
        :meth:`BufferPool.get_many` call each; hit/miss charges are
        identical to reading them one at a time.
        """
        window = max(1, self.buffer_pool.read_ahead_window)
        for start in range(0, len(self._page_ids), window):
            run = self.buffer_pool.get_many(
                self._page_ids[start : start + window], meter
            )
            for page in run:
                yield from page.payload
        yield from self._write_buffer

    def sorted_rids(self, meter: CostMeter = NULL_METER) -> list[RID]:
        """Materialize and sort the full list (final-stage preparation)."""
        return sorted(self.scan(meter))

    def release(self) -> None:
        """Free all pages. The paper stresses Jscan releases its memory and
        temp space "before any records are delivered"."""
        for page_id in self._page_ids:
            self.buffer_pool.evict(page_id)
            self.buffer_pool.pager.free(page_id)
        self._page_ids.clear()
        self._write_buffer.clear()
        self._count = 0
        self._released = True

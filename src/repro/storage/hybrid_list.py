"""The Section 6 "hybrid" RID list.

    "The RID list size quantity is split into several monotonically
    increasing regions. A zero-long RID list causes an immediate shortcut
    action. Lists up to 20 RIDs are stored in a small statically-allocated
    buffer ... Bigger lists are stored in the allocated buffer. Even bigger
    lists flow into a temporary table and set the bits in a bitmap ...
    Despite its simplicity, this "hybrid" scan arrangement is quite
    advantageous due to the underlying L-shaped distribution."

The list grows through regions as RIDs arrive. While in memory it acts as an
exact filter; once spilled, membership tests go through the hashed bitmap
(no false negatives). Most real lists are tiny (L-shape), so most retrievals
never pay allocation or spill costs.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, Iterator

from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.storage.bitmap import BitmapFilter
from repro.storage.buffer_pool import BufferPool, CostMeter, NULL_METER
from repro.storage.rid import RID, SortedRidBuffer
from repro.storage.temp_table import TempTable


class RidListRegion(enum.Enum):
    """Which storage region the list currently occupies."""

    EMPTY = "empty"           # zero RIDs: shortcut region
    STATIC = "static"         # <= static_rid_buffer_size, preallocated buffer
    ALLOCATED = "allocated"   # heap-allocated in-memory buffer
    SPILLED = "spilled"       # temp table + bitmap filter


class HybridRidList:
    """A RID list that migrates across storage regions as it grows."""

    def __init__(
        self,
        buffer_pool: BufferPool,
        name: str,
        config: EngineConfig = DEFAULT_CONFIG,
    ) -> None:
        self.buffer_pool = buffer_pool
        self.name = name
        self.config = config
        self._static: list[RID] = []
        self._allocated: SortedRidBuffer | None = None
        self._temp: TempTable | None = None
        self._bitmap: BitmapFilter | None = None
        self._count = 0
        #: number of region transitions (exposed for the hybrid bench)
        self.allocations = 0
        self.spills = 0

    def __len__(self) -> int:
        return self._count

    @property
    def region(self) -> RidListRegion:
        """Current storage region."""
        if self._temp is not None:
            return RidListRegion.SPILLED
        if self._allocated is not None:
            return RidListRegion.ALLOCATED
        if self._static:
            return RidListRegion.STATIC
        return RidListRegion.EMPTY

    # -- building ----------------------------------------------------------

    def add(self, rid: RID, meter: CostMeter = NULL_METER) -> None:
        """Append a RID, migrating regions when thresholds are crossed."""
        region = self.region
        if region is RidListRegion.SPILLED:
            self._temp.append(rid, meter)
            self._bitmap.add(rid)
        elif region is RidListRegion.ALLOCATED:
            if self._count >= self.config.allocated_rid_buffer_size:
                self._spill(meter)
                self._temp.append(rid, meter)
                self._bitmap.add(rid)
            else:
                self._allocated.add(rid)
        else:
            if len(self._static) >= self.config.static_rid_buffer_size:
                self._promote_to_allocated()
                self._allocated.add(rid)
            else:
                self._static.append(rid)
        self._count += 1

    def extend(self, rids: Iterable[RID], meter: CostMeter = NULL_METER) -> None:
        """Append many RIDs."""
        for rid in rids:
            self.add(rid, meter)

    def _promote_to_allocated(self) -> None:
        self._allocated = SortedRidBuffer(self._static)
        self._static = []
        self.allocations += 1

    def _spill(self, meter: CostMeter) -> None:
        self._temp = TempTable(
            self.buffer_pool,
            f"{self.name}.spill",
            rids_per_page=self.config.temp_rids_per_page,
        )
        self._bitmap = BitmapFilter(self.config.bitmap_bits)
        for rid in self._allocated:
            self._temp.append(rid, meter)
            self._bitmap.add(rid)
        self._allocated = None
        self.spills += 1

    # -- filtering -----------------------------------------------------------

    def may_contain(self, rid: RID) -> bool:
        """Filter test. Exact while in memory; bitmap (no false negatives)
        once spilled."""
        region = self.region
        if region is RidListRegion.EMPTY:
            return False
        if region is RidListRegion.STATIC:
            return rid in self._static
        if region is RidListRegion.ALLOCATED:
            return rid in self._allocated
        return rid in self._bitmap

    @property
    def is_exact_filter(self) -> bool:
        """True while membership tests cannot produce false positives."""
        return self.region is not RidListRegion.SPILLED

    # -- consuming -----------------------------------------------------------

    def iter_unsorted(self, meter: CostMeter = NULL_METER) -> Iterator[RID]:
        """Iterate RIDs in insertion order (reads spill pages if any)."""
        region = self.region
        if region is RidListRegion.STATIC:
            yield from self._static
        elif region is RidListRegion.ALLOCATED:
            yield from self._allocated
        elif region is RidListRegion.SPILLED:
            yield from self._temp.scan(meter)

    def sorted_rids(self, meter: CostMeter = NULL_METER) -> list[RID]:
        """Materialize the list sorted for page-clustered fetching."""
        return sorted(self.iter_unsorted(meter))

    def refilter(self, keep: "Callable[[RID], bool]") -> int:
        """Drop in-place every RID failing ``keep``; returns the drop count.

        Only legal while the list is in memory — the Section 6 rationale for
        limiting simultaneous adjacent scans to the memory buffer is exactly
        that "the cost of refiltering the partial RID list against the
        winning scan filter is low only within main memory".
        """
        region = self.region
        if region is RidListRegion.SPILLED:
            raise RuntimeError("cannot refilter a spilled RID list in place")
        if region is RidListRegion.EMPTY:
            return 0
        if region is RidListRegion.STATIC:
            kept = [rid for rid in self._static if keep(rid)]
            dropped = len(self._static) - len(kept)
            self._static = kept
        else:
            kept = [rid for rid in self._allocated if keep(rid)]
            dropped = len(self._allocated) - len(kept)
            self._allocated = SortedRidBuffer(kept)
        self._count -= dropped
        return dropped

    def discard(self) -> None:
        """Throw the list away (an abandoned, non-competitive index scan)."""
        if self._temp is not None:
            self._temp.release()
        self._static = []
        self._allocated = None
        self._temp = None
        self._bitmap = None
        self._count = 0

    def release_memory(self) -> None:
        """Alias of :meth:`discard`, named for the Fin hand-off path where
        the list content has already been consumed."""
        self.discard()

"""Simulated storage substrate.

The paper's cost metric is physical disk I/O. This package provides a
simulated disk (:mod:`repro.storage.pager`), an LRU buffer pool with
per-process miss attribution (:mod:`repro.storage.buffer_pool`), slotted-page
heap files addressed by RIDs (:mod:`repro.storage.heap`), and the RID-list
machinery used by Jscan: sorted RID buffers, hashed bitmap filters [Babb79],
spill temp tables, and the Section 6 "hybrid" RID list.
"""

from repro.storage.bitmap import BitmapFilter
from repro.storage.buffer_pool import BufferPool, CostMeter
from repro.storage.heap import HeapFile
from repro.storage.hybrid_list import HybridRidList, RidListRegion
from repro.storage.pager import Page, Pager, PageKind
from repro.storage.rid import RID, SortedRidBuffer, yao_pages_touched
from repro.storage.temp_table import TempTable

__all__ = [
    "BitmapFilter",
    "BufferPool",
    "CostMeter",
    "HeapFile",
    "HybridRidList",
    "RidListRegion",
    "Page",
    "Pager",
    "PageKind",
    "RID",
    "SortedRidBuffer",
    "TempTable",
    "yao_pages_touched",
]

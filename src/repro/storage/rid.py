"""Record identifiers and RID-list helpers.

A RID names a record by (page number, slot). Jscan (Section 6) manipulates
RID lists heavily: building them from index scans, intersecting them through
filters, sorting them for page-clustered final fetches. Yao's formula
estimates how many distinct pages a sorted RID fetch will touch, which is the
"projected second stage cost" used by the two-stage competition.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterable, Iterator, NamedTuple


class RID(NamedTuple):
    """A record identifier: heap page number and slot within the page."""

    page: int
    slot: int

    def encode(self, slots_per_page: int = 1 << 16) -> int:
        """Pack into a single integer (for hashing into bitmap filters)."""
        return self.page * slots_per_page + self.slot

    @classmethod
    def decode(cls, value: int, slots_per_page: int = 1 << 16) -> "RID":
        """Inverse of :meth:`encode`."""
        return cls(value // slots_per_page, value % slots_per_page)


class SortedRidBuffer:
    """An in-memory, always-sorted RID list with membership tests.

    This is the "in-buffer sorted RID list" filter of Section 6, used when a
    RID list is small enough to stay in main memory. Insertion keeps order so
    the final fetch stage can walk pages monotonically without a sort.
    """

    __slots__ = ("_rids",)

    def __init__(self, rids: Iterable[RID] = ()) -> None:
        self._rids: list[RID] = sorted(rids)

    def __len__(self) -> int:
        return len(self._rids)

    def __iter__(self) -> Iterator[RID]:
        return iter(self._rids)

    def __contains__(self, rid: RID) -> bool:
        i = bisect_left(self._rids, rid)
        return i < len(self._rids) and self._rids[i] == rid

    def add(self, rid: RID) -> None:
        """Insert keeping sorted order (no-op semantics for duplicates kept:
        duplicates are allowed and preserved, matching index duplicates)."""
        insort(self._rids, rid)

    def extend(self, rids: Iterable[RID]) -> None:
        """Bulk insert."""
        for rid in rids:
            insort(self._rids, rid)

    def to_list(self) -> list[RID]:
        """Return the RIDs as a (sorted) list copy."""
        return list(self._rids)

    def intersect(self, other: "SortedRidBuffer") -> "SortedRidBuffer":
        """Sorted-merge intersection of two buffers."""
        result: list[RID] = []
        a, b = self._rids, other._rids
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i] == b[j]:
                result.append(a[i])
                i += 1
                j += 1
            elif a[i] < b[j]:
                i += 1
            else:
                j += 1
        out = SortedRidBuffer()
        out._rids = result
        return out

    def union(self, other: "SortedRidBuffer") -> "SortedRidBuffer":
        """Sorted-merge union (duplicates collapsed)."""
        result: list[RID] = []
        a, b = self._rids, other._rids
        i = j = 0
        while i < len(a) or j < len(b):
            if j >= len(b) or (i < len(a) and a[i] <= b[j]):
                candidate = a[i]
                i += 1
                if j < len(b) and b[j] == candidate:
                    j += 1
            else:
                candidate = b[j]
                j += 1
            if not result or result[-1] != candidate:
                result.append(candidate)
        out = SortedRidBuffer()
        out._rids = result
        return out

    def distinct_pages(self) -> int:
        """Number of distinct heap pages referenced."""
        return len({rid.page for rid in self._rids})


def yao_pages_touched(total_pages: int, records_per_page: int, k: int) -> float:
    """Yao's formula: expected distinct pages touched fetching ``k`` records.

    Given a table of ``total_pages`` pages with ``records_per_page`` records
    each, selecting ``k`` records uniformly without replacement touches on
    average ``m * (1 - prod_{i=1..k} (n - n/m - i + 1)/(n - i + 1))`` pages.
    This is the engine's estimate for the cost of a sorted RID-list fetch
    (the "second stage" of Jscan's two-stage competition).

    A cheap closed-form approximation ``m * (1 - (1 - 1/m)**k)`` is used when
    the exact product would be long; it is accurate for the sizes we model.
    """
    if total_pages <= 0 or k <= 0:
        return 0.0
    m = float(total_pages)
    n = float(total_pages * records_per_page)
    if k >= n:
        return m
    if k > 1000:
        return m * (1.0 - (1.0 - 1.0 / m) ** k)
    prod = 1.0
    per_page = n / m
    for i in range(1, int(k) + 1):
        numerator = n - per_page - i + 1
        denominator = n - i + 1
        if numerator <= 0:
            return m
        prod *= numerator / denominator
    return m * (1.0 - prod)

"""Partitioned tables: N child tables behind one table surface.

A :class:`PartitionedTable` stores its rows in ``k`` ordinary
:class:`~repro.db.table.Table` children (reserved names ``T#p0`` ...
``T#p{k-1}``), each with its own heap file, B-tree indexes, and — the
point of the exercise — its own private :class:`~repro.storage
.buffer_pool.BufferPool` over the database's one shared (locked) pager.
Private pools are what make worker threads safe: the LRU bookkeeping of a
partition is only ever touched under that partition's lock.

The class mirrors the :class:`~repro.db.table.Table` surface the SQL
layer, binder, and shell use (``schema``, ``select``/``select_steps``,
``insert``, ``create_index``, ``analyze``, ``row_count``...), so a
partitioned table drops into every existing retrieval path; ``select``
routes through :func:`repro.partition.scatter.scatter_steps` instead of
a single retrieval engine. Joins and counterfactual replay degrade
explicitly (no ``heap`` attribute → the executor raises a clear error /
the replayer skips), rather than silently scanning one partition.
"""

from __future__ import annotations

import threading
from typing import Any, Generator, Iterable, Mapping, Sequence

from repro.competition.process import drain
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.db.catalog import (
    Column,
    ColumnStats,
    Histogram,
    IndexInfo,
    TableSchema,
    TableStats,
)
from repro.db.table import Table
from repro.engine.goals import OptimizationGoal
from repro.engine.retrieval import RetrievalRequest, RetrievalResult
from repro.errors import CatalogError
from repro.expr.ast import ALWAYS_TRUE, Expr
from repro.obs.trace import Tracer
from repro.partition.partitioner import (
    PartitionSpec,
    make_partitioner,
    partition_name,
)
from repro.partition.scatter import scatter_steps
from repro.storage.buffer_pool import BufferPool, CostMeter, NULL_METER
from repro.storage.rid import RID


class PartitionedTable:
    """A named table whose rows live in hash/range partitions."""

    #: lets callers distinguish without isinstance round-trips
    is_partitioned = True

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        spec: PartitionSpec,
        database: Any,
        rows_per_page: int = 32,
        index_order: int = 32,
        config: EngineConfig = DEFAULT_CONFIG,
    ) -> None:
        self.name = name
        self.schema = TableSchema(columns)
        if spec.column not in self.schema:
            raise CatalogError(
                f"partition column {spec.column!r} is not a column of {name!r}"
            )
        self.spec = spec
        self.config = config
        self.database = database
        self.partitioner = make_partitioner(
            spec, self.schema.index_of(spec.column)
        )
        pages = config.partition_buffer_pages or max(
            8, database.buffer_pool.capacity // spec.partitions
        )
        self.partitions: list[Table] = []
        for index in range(spec.partitions):
            pool = BufferPool(database.pager, pages)
            self.partitions.append(
                Table(
                    partition_name(name, index),
                    list(columns),
                    pool,
                    rows_per_page=rows_per_page,
                    index_order=index_order,
                    config=config,
                )
            )
        #: one lock per partition: worker threads of different scatters
        #: serialize on a partition's buffer pool and B-trees
        self.partition_locks = [
            threading.Lock() for _ in range(spec.partitions)
        ]
        self.stats: TableStats | None = None
        #: DDL notification hook, set by the owning Database (same
        #: contract as :class:`Table`)
        self.on_schema_change: Any | None = None

    # -- surface shared with Table -------------------------------------------

    @property
    def indexes(self) -> dict[str, IndexInfo]:
        """Index catalog (partition 0's view — every partition carries the
        same index set; per-partition B-trees live on the children)."""
        return self.partitions[0].indexes

    @property
    def row_count(self) -> int:
        return sum(child.row_count for child in self.partitions)

    @property
    def page_count(self) -> int:
        """Heap pages summed over partitions (shell catalog listing)."""
        return sum(child.heap.page_count for child in self.partitions)

    def partition_stats_target(self):
        """The database-wide :class:`~repro.partition.stats
        .PartitionStats` scatters report into (None when detached)."""
        return getattr(self.database, "partition_stats", None)

    #: attribute the scatter coordinator reads
    @property
    def partition_stats(self):
        return self.partition_stats_target()

    def worker_pool(self):
        """The database's shared worker pool (parallel scatters only)."""
        return self.database.worker_pool()

    # -- DDL -----------------------------------------------------------------

    def create_index(
        self,
        name: str,
        columns: Sequence[str],
        unique: bool = False,
        order: int | None = None,
    ) -> IndexInfo:
        """Create the index on every partition (each child backfills its
        own B-tree); returns partition 0's :class:`IndexInfo`."""
        if name in self.indexes:
            raise CatalogError(f"index {name!r} already exists")
        infos = [
            child.create_index(name, columns, unique=unique, order=order)
            for child in self.partitions
        ]
        if self.on_schema_change is not None:
            self.on_schema_change()
        return infos[0]

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise CatalogError(f"unknown index {name!r}")
        for child in self.partitions:
            child.drop_index(name)
        if self.on_schema_change is not None:
            self.on_schema_change()

    # -- DML -----------------------------------------------------------------

    def insert(
        self,
        values: Mapping[str, Any] | Sequence[Any],
        meter: CostMeter = NULL_METER,
    ) -> RID:
        """Route one row to its partition by the partitioning column."""
        if isinstance(values, Mapping):
            row = self.schema.row_from_mapping(values)
        else:
            row = self.schema.validate_row(tuple(values))
        index = self.partitioner.partition_of_row(row)
        return self.partitions[index].insert(row, meter)

    def insert_many(
        self, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> int:
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    # -- statistics ----------------------------------------------------------

    def analyze(self, histogram_buckets: int = 10) -> TableStats:
        """Collect table-level statistics across every partition (children
        also keep their own per-partition stats for their local engines)."""
        column_values: dict[str, list[Any]] = {
            name: [] for name in self.schema.names
        }
        for child in self.partitions:
            child.analyze(histogram_buckets)
            for _, row in child.heap.scan():
                for name, value in zip(self.schema.names, row):
                    column_values[name].append(value)
        stats = TableStats(row_count=self.row_count, page_count=self.page_count)
        for name, values in column_values.items():
            non_null = [value for value in values if value is not None]
            stats.columns[name] = ColumnStats(
                histogram=Histogram(non_null, histogram_buckets),
                distinct=len(set(non_null)),
            )
        self.stats = stats
        return stats

    # -- retrieval -----------------------------------------------------------

    def select(
        self,
        where: Expr = ALWAYS_TRUE,
        host_vars: Mapping[str, Any] | None = None,
        columns: Sequence[str] | None = None,
        order_by: Sequence[str] = (),
        limit: int | None = None,
        optimize_for: OptimizationGoal = OptimizationGoal.DEFAULT,
        context_key: Any = None,
        tracer: Tracer | None = None,
    ) -> RetrievalResult:
        """Run one scatter-gather retrieval to completion."""
        return drain(
            self.select_steps(
                where=where,
                host_vars=host_vars,
                columns=columns,
                order_by=order_by,
                limit=limit,
                optimize_for=optimize_for,
                context_key=context_key,
                tracer=tracer,
            )
        )

    def select_steps(
        self,
        where: Expr = ALWAYS_TRUE,
        host_vars: Mapping[str, Any] | None = None,
        columns: Sequence[str] | None = None,
        order_by: Sequence[str] = (),
        limit: int | None = None,
        optimize_for: OptimizationGoal = OptimizationGoal.DEFAULT,
        context_key: Any = None,
        tracer: Tracer | None = None,
        predicate_cache: Any | None = None,
        feedback: Any | None = None,
        estimator: Any | None = None,
    ) -> Generator[RetrievalResult, None, RetrievalResult]:
        """:meth:`select` as a step generator (scheduler entry point).

        ``context_key`` iteration-context reuse and the
        ``predicate_cache`` hook are accepted for surface compatibility
        but not forwarded into partition fetches: each fetch must be
        self-contained to run on a worker thread. ``feedback`` and
        ``estimator`` *are* forwarded — as thread-confined snapshot
        views whose observations the coordinator replays post-gather
        (see :mod:`repro.partition.scatter`).
        """
        request = RetrievalRequest(
            restriction=where,
            host_vars=dict(host_vars or {}),
            output_columns=tuple(columns) if columns is not None else None,
            order_by=tuple(order_by),
            limit=limit,
            goal=optimize_for,
        )
        return scatter_steps(
            self, request, tracer, feedback=feedback, estimator=estimator
        )

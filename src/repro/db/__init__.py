"""User-facing database objects: catalog, tables, sessions."""

from repro.db.catalog import Column, ColumnStats, Histogram, IndexInfo, TableSchema, TableStats
from repro.db.session import Database
from repro.db.table import Table

__all__ = [
    "Column",
    "ColumnStats",
    "Histogram",
    "IndexInfo",
    "TableSchema",
    "TableStats",
    "Database",
    "Table",
]

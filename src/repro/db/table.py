"""The user-facing table API.

A :class:`Table` bundles a heap file, its schema, its B-tree indexes, and
the dynamic retrieval engine. ``select`` is the public retrieval call; the
static-optimizer baseline and SQL layer build on the same objects.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Mapping, Sequence

from repro.btree.tree import BTree
from repro.competition.process import drain
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.db.catalog import (
    Column,
    ColumnStats,
    Histogram,
    IndexInfo,
    TableSchema,
    TableStats,
)
from repro.engine.goals import OptimizationGoal
from repro.engine.initial import IterationContext
from repro.engine.retrieval import (
    RetrievalRequest,
    RetrievalResult,
    SingleTableRetrieval,
)
from repro.errors import CatalogError
from repro.expr.ast import ALWAYS_TRUE, Expr
from repro.obs.trace import Tracer
from repro.storage.buffer_pool import BufferPool, CostMeter, NULL_METER
from repro.storage.heap import HeapFile
from repro.storage.rid import RID


class Table:
    """A named table with rows, indexes, and a dynamic retrieval engine."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        buffer_pool: BufferPool,
        rows_per_page: int = 32,
        index_order: int = 32,
        config: EngineConfig = DEFAULT_CONFIG,
    ) -> None:
        self.name = name
        self.schema = TableSchema(columns)
        self.buffer_pool = buffer_pool
        self.heap = HeapFile(buffer_pool, name, rows_per_page)
        self.indexes: dict[str, IndexInfo] = {}
        self.index_order = index_order
        self.config = config
        #: compile-time statistics (for the static-optimizer baseline)
        self.stats: TableStats | None = None
        #: per-query-shape iteration contexts (Section 5 order reuse)
        self._contexts: dict[Any, IterationContext] = {}
        #: DDL notification hook, set by the owning Database so index
        #: create/drop invalidates cached plans (None for standalone tables)
        self.on_schema_change: Any | None = None

    # -- data definition ------------------------------------------------------

    def create_index(
        self,
        name: str,
        columns: Sequence[str],
        unique: bool = False,
        order: int | None = None,
    ) -> IndexInfo:
        """Create a B-tree index over ``columns`` and backfill it."""
        if name in self.indexes:
            raise CatalogError(f"index {name!r} already exists")
        positions = tuple(self.schema.index_of(column) for column in columns)
        btree = BTree(
            self.buffer_pool,
            f"{self.name}.{name}",
            order or self.index_order,
        )
        info = IndexInfo(
            name=name,
            columns=tuple(columns),
            btree=btree,
            unique=unique,
            positions=positions,
        )
        for rid, row in self.heap.scan():
            btree.insert(info.key_for(row), rid)
        self.indexes[name] = info
        if self.on_schema_change is not None:
            self.on_schema_change()
        return info

    def drop_index(self, name: str) -> None:
        """Remove an index, releasing its pages from cache and disk."""
        if name not in self.indexes:
            raise CatalogError(f"unknown index {name!r}")
        info = self.indexes.pop(name)
        pager = self.buffer_pool.pager
        for page in list(pager.pages_of(info.btree.name)):
            self.buffer_pool.evict(page.page_id)
            pager.free(page.page_id)
        if self.on_schema_change is not None:
            self.on_schema_change()

    # -- data manipulation -------------------------------------------------------

    def insert(self, values: Mapping[str, Any] | Sequence[Any], meter: CostMeter = NULL_METER) -> RID:
        """Insert one row (mapping or positional) and maintain all indexes."""
        if isinstance(values, Mapping):
            row = self.schema.row_from_mapping(values)
        else:
            row = self.schema.validate_row(tuple(values))
        rid = self.heap.insert(row, meter)
        for index in self.indexes.values():
            index.btree.insert(index.key_for(row), rid, meter)
        return rid

    def insert_many(self, rows: Iterable[Mapping[str, Any] | Sequence[Any]]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def delete_rid(self, rid: RID, meter: CostMeter = NULL_METER) -> None:
        """Delete one row by RID, maintaining indexes."""
        row = self.heap.fetch(rid, meter)
        for index in self.indexes.values():
            index.btree.delete(index.key_for(row), rid, meter)
        self.heap.delete(rid, meter)

    @property
    def row_count(self) -> int:
        """Live rows."""
        return self.heap.row_count

    @property
    def page_count(self) -> int:
        """Heap pages (same surface as
        :class:`~repro.db.partitioned.PartitionedTable`)."""
        return self.heap.page_count

    # -- statistics ------------------------------------------------------------------

    def analyze(self, histogram_buckets: int = 10) -> TableStats:
        """Collect compile-time statistics (rescans the table).

        This is the maintenance cost Section 5 criticizes: the statistics
        are a snapshot and go stale, unlike the live B-tree descents the
        dynamic engine uses.
        """
        column_values: dict[str, list[Any]] = {name: [] for name in self.schema.names}
        for _, row in self.heap.scan():
            for name, value in zip(self.schema.names, row):
                column_values[name].append(value)
        stats = TableStats(row_count=self.heap.row_count, page_count=self.heap.page_count)
        for name, values in column_values.items():
            non_null = [value for value in values if value is not None]
            stats.columns[name] = ColumnStats(
                histogram=Histogram(non_null, histogram_buckets),
                distinct=len(set(non_null)),
            )
        self.stats = stats
        return stats

    # -- retrieval ---------------------------------------------------------------------

    def retrieval_engine(self) -> SingleTableRetrieval:
        """The dynamic retrieval subsystem bound to this table."""
        return SingleTableRetrieval(
            self.heap, self.schema, list(self.indexes.values()), self.buffer_pool, self.config
        )

    def context_for(self, key: Any) -> IterationContext:
        """The iteration context for one query shape (created on demand)."""
        if key not in self._contexts:
            self._contexts[key] = IterationContext()
        return self._contexts[key]

    def select(
        self,
        where: Expr = ALWAYS_TRUE,
        host_vars: Mapping[str, Any] | None = None,
        columns: Sequence[str] | None = None,
        order_by: Sequence[str] = (),
        limit: int | None = None,
        optimize_for: OptimizationGoal = OptimizationGoal.DEFAULT,
        context_key: Any = None,
        tracer: Tracer | None = None,
    ) -> RetrievalResult:
        """Run one dynamic retrieval.

        ``context_key`` opts into Section 5 iteration-context reuse: repeated
        selects with the same key start estimation from the previous run's
        index order.
        """
        return drain(
            self.select_steps(
                where=where,
                host_vars=host_vars,
                columns=columns,
                order_by=order_by,
                limit=limit,
                optimize_for=optimize_for,
                context_key=context_key,
                tracer=tracer,
            )
        )

    def select_steps(
        self,
        where: Expr = ALWAYS_TRUE,
        host_vars: Mapping[str, Any] | None = None,
        columns: Sequence[str] | None = None,
        order_by: Sequence[str] = (),
        limit: int | None = None,
        optimize_for: OptimizationGoal = OptimizationGoal.DEFAULT,
        context_key: Any = None,
        tracer: Tracer | None = None,
        predicate_cache: Any | None = None,
        feedback: Any | None = None,
        estimator: Any | None = None,
    ) -> Generator[RetrievalResult, None, RetrievalResult]:
        """:meth:`select` as a step generator.

        Yields the live :class:`RetrievalResult` after every engine step so
        the multi-query scheduler (:mod:`repro.server`) can interleave this
        retrieval with others over the shared buffer pool; closing the
        generator cancels the retrieval and releases its temp structures.
        ``tracer`` attaches the retrieval to a query-level span timeline.
        ``predicate_cache`` (a :class:`repro.cache.PredicateCache`) reuses
        compiled predicates across executions of a cached plan;
        ``feedback`` (a :class:`repro.cache.FeedbackStore`) sharpens
        initial estimates from previously observed cardinalities and
        records this retrieval's observations back.
        ``estimator`` (a :class:`repro.estimate.Estimator`) records
        q-errors at retirement and gates competition on estimate
        confidence.
        """
        request = RetrievalRequest(
            restriction=where,
            host_vars=dict(host_vars or {}),
            output_columns=tuple(columns) if columns is not None else None,
            order_by=tuple(order_by),
            limit=limit,
            goal=optimize_for,
            predicate_cache=predicate_cache,
            feedback=feedback,
            estimator=estimator,
        )
        context = self.context_for(context_key) if context_key is not None else None
        return self.retrieval_engine().run_steps(request, context, tracer)

"""Catalog: schemas, index metadata, and compile-time statistics.

The compile-time statistics (:class:`TableStats`) exist for the *baseline*:
the System R-style static optimizer estimates selectivities from equi-width
histograms collected at ``analyze()`` time — exactly the "widely known
estimation method based on storing the column distribution histograms" whose
drawbacks Section 5 lists (stale, rescan-dependent, range-only, blind to
small ranges). The dynamic engine instead estimates from the live B-trees.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.btree.tree import BTree
from repro.errors import CatalogError

#: supported column types
COLUMN_TYPES = ("int", "float", "str")


@dataclass(frozen=True)
class Column:
    """A column definition."""

    name: str
    type: str = "int"

    def __post_init__(self) -> None:
        if self.type not in COLUMN_TYPES:
            raise CatalogError(f"unsupported column type {self.type!r}")


class TableSchema:
    """Ordered column list with name resolution and row validation."""

    def __init__(self, columns: Sequence[Column]) -> None:
        if not columns:
            raise CatalogError("a table needs at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in {names}")
        self.columns = tuple(columns)
        self.position: dict[str, int] = {name: i for i, name in enumerate(names)}

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self.position

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in order."""
        return tuple(column.name for column in self.columns)

    def index_of(self, name: str) -> int:
        """Position of a column; raises :class:`CatalogError` when unknown."""
        try:
            return self.position[name]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}") from None

    def row_from_mapping(self, values: Mapping[str, Any]) -> tuple:
        """Build a row tuple from a name->value mapping (missing -> None)."""
        unknown = set(values) - set(self.position)
        if unknown:
            raise CatalogError(f"unknown columns {sorted(unknown)}")
        return tuple(values.get(column.name) for column in self.columns)

    def validate_row(self, row: Sequence[Any]) -> tuple:
        """Check arity and primitive types; returns the row as a tuple."""
        if len(row) != len(self.columns):
            raise CatalogError(
                f"row arity {len(row)} != schema arity {len(self.columns)}"
            )
        for value, column in zip(row, self.columns):
            if value is None:
                continue
            if column.type == "int" and not isinstance(value, int):
                raise CatalogError(f"column {column.name!r} expects int, got {value!r}")
            if column.type == "float" and not isinstance(value, (int, float)):
                raise CatalogError(f"column {column.name!r} expects float, got {value!r}")
            if column.type == "str" and not isinstance(value, str):
                raise CatalogError(f"column {column.name!r} expects str, got {value!r}")
        return tuple(row)


@dataclass
class IndexInfo:
    """Metadata for one B-tree index."""

    name: str
    #: indexed column names, in key order
    columns: tuple[str, ...]
    btree: BTree
    unique: bool = False
    #: positions of the indexed columns in the table schema
    positions: tuple[int, ...] = ()

    def key_for(self, row: Sequence[Any]) -> tuple:
        """Extract this index's key from a row."""
        return tuple(row[position] for position in self.positions)

    def covers(self, needed_columns: frozenset[str] | set[str]) -> bool:
        """True when the index contains every needed column (self-sufficiency)."""
        return set(needed_columns) <= set(self.columns)

    def provides_order(self, order_by: Sequence[str]) -> bool:
        """True when a forward scan of this index delivers the requested order."""
        if not order_by:
            return False
        return tuple(order_by) == self.columns[: len(order_by)]


class Histogram:
    """Equi-width histogram over one column (compile-time statistic)."""

    def __init__(self, values: Sequence[Any], buckets: int = 10) -> None:
        cleaned = sorted(v for v in values if v is not None)
        self.total = len(cleaned)
        self.buckets = buckets
        if not cleaned:
            self.lo = self.hi = None
            self.counts: list[int] = [0] * buckets
            self.edges: list[float] = []
            return
        self.lo, self.hi = cleaned[0], cleaned[-1]
        if isinstance(self.lo, str):
            # string histograms: bucket by rank, keep edges as sample keys
            step = max(1, len(cleaned) // buckets)
            self.edges = [cleaned[min(i * step, len(cleaned) - 1)] for i in range(buckets + 1)]
            self.counts = [0] * buckets
            for value in cleaned:
                index = min(bisect.bisect_right(self.edges, value) - 1, buckets - 1)
                self.counts[max(index, 0)] += 1
            return
        width = (self.hi - self.lo) / buckets if self.hi > self.lo else 1.0
        self.edges = [self.lo + i * width for i in range(buckets + 1)]
        self.counts = [0] * buckets
        for value in cleaned:
            index = min(int((value - self.lo) / width), buckets - 1) if width else 0
            self.counts[index] += 1

    def selectivity_range(
        self, lo: Any | None, hi: Any | None
    ) -> float:
        """Estimated fraction of rows in [lo, hi] (inclusive, Nones open).

        This is the coarse compile-time estimate: linear interpolation
        within buckets, which is exactly what makes it blind to ranges
        narrower than a bucket (Section 5's critique).
        """
        if self.total == 0 or self.lo is None:
            return 0.0
        if isinstance(self.lo, str):
            # rank-based approximation for strings
            lo_rank = 0 if lo is None else bisect.bisect_left(self.edges, lo) / max(len(self.edges), 1)
            hi_rank = 1.0 if hi is None else bisect.bisect_right(self.edges, hi) / max(len(self.edges), 1)
            return max(0.0, min(1.0, hi_rank - lo_rank))
        span_lo = self.lo if lo is None else lo
        span_hi = self.hi if hi is None else hi
        if span_hi < span_lo:
            return 0.0
        if span_lo == span_hi:
            # a point query cannot be resolved below bucket granularity;
            # report the containing bucket's share (the histogram's
            # fundamental limitation that Section 5 criticizes)
            for index, count in enumerate(self.counts):
                if self.edges[index] <= span_lo <= self.edges[index + 1]:
                    return count / self.total
            return 0.0
        covered = 0.0
        for index, count in enumerate(self.counts):
            bucket_lo, bucket_hi = self.edges[index], self.edges[index + 1]
            width = bucket_hi - bucket_lo
            if width <= 0:
                if span_lo <= bucket_lo <= span_hi:
                    covered += count
                continue
            overlap = min(span_hi, bucket_hi) - max(span_lo, bucket_lo)
            if overlap > 0:
                covered += count * min(1.0, overlap / width)
        return min(1.0, covered / self.total)


@dataclass
class ColumnStats:
    """Compile-time statistics of one column."""

    histogram: Histogram
    distinct: int

    @property
    def eq_selectivity(self) -> float:
        """1/NDV estimate for equality predicates."""
        return 1.0 / self.distinct if self.distinct else 0.0


@dataclass
class TableStats:
    """Compile-time statistics of a table, built by ``Table.analyze()``."""

    row_count: int
    page_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

"""Database sessions: tables, buffer pool, SQL entry point.

A :class:`Database` owns the simulated disk and buffer pool shared by all
of its tables — sharing is deliberate: the paper's Section 3(c) uncertainty
("the pattern of caching the disk pages is influenced by many asynchronous
processes") only exists because retrievals compete for one cache.
"""

from __future__ import annotations

import atexit
import random
import warnings
import weakref
from typing import Any, Mapping, Sequence

from repro.cache.feedback import FeedbackStore
from repro.cache.plan_cache import PlanCache
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.db.catalog import Column
from repro.db.partitioned import PartitionedTable
from repro.db.table import Table
from repro.engine.goals import OptimizationGoal
from repro.estimate import Estimator
from repro.errors import CatalogError
from repro.partition.partitioner import PartitionSpec
from repro.partition.stats import PartitionStats
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager

#: every live partition worker pool, so interpreter exit with in-flight
#: workers drains instead of hanging on the executor's own atexit join
#: (workers notice their scatter's abort event within one engine quantum)
_LIVE_WORKER_POOLS: "weakref.WeakSet" = weakref.WeakSet()


def _drain_worker_pools_at_exit() -> None:
    for pool in list(_LIVE_WORKER_POOLS):
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(_drain_worker_pools_at_exit)


class Database:
    """A collection of tables over one simulated disk and buffer pool."""

    def __init__(
        self,
        buffer_capacity: int = 256,
        config: EngineConfig = DEFAULT_CONFIG,
    ) -> None:
        self.pager = Pager()
        self.buffer_pool = BufferPool(self.pager, buffer_capacity)
        self.config = config
        self.tables: dict[str, Table] = {}
        #: monotone counter bumped by every DDL statement; plan-cache
        #: entries carry the version they were built under, so any DDL
        #: implicitly invalidates every previously cached plan
        self.schema_version = 0
        #: server-wide LRU plan cache, shared by every session like the
        #: buffer pool (``config.plan_cache_size == 0`` disables it)
        self.plan_cache = PlanCache(config.plan_cache_size)
        #: adaptive selectivity feedback (estimated-vs-actual cardinality
        #: corrections); active only while the plan cache is enabled
        self.feedback = FeedbackStore(
            alpha=config.feedback_alpha,
            enabled=config.plan_cache_size > 0 and config.selectivity_feedback,
        )
        #: estimation-quality subsystem: per-signature q-error tracking,
        #: self-tuning histograms, and the variance-gated competition
        #: confidence score (:mod:`repro.estimate`)
        self.estimator = Estimator(
            capacity=config.estimator_capacity,
            histogram_budget=config.histogram_budget,
            alpha=config.feedback_alpha,
            enabled=config.estimation_tracking,
            min_observations=config.confidence_min_observations,
            confidence_threshold=config.competition_confidence,
        )
        #: SQL-level ``PREPARE name AS ...`` registry (name -> CachedPlan)
        self.prepared: dict[str, Any] = {}
        #: cache-interference knob: fraction of cache randomly evicted per
        #: interference tick (0 = a quiet system)
        self.interference_rate = 0.0
        self._interference_rng = random.Random(0xD1CE)
        #: lazily-created Connection backing the execute()/explain() shims
        self._default_connection = None
        #: scatter-gather aggregates for every partitioned table (wired
        #: onto the server's MetricsRegistry)
        self.partition_stats = PartitionStats()
        #: lazily-created shared ThreadPoolExecutor for parallel scatters
        #: (never created while ``config.partition_workers <= 1``)
        self._worker_pool = None

    def schema_changed(self, table: str | None = None) -> None:
        """Note a DDL change: bump the schema version and eagerly drop the
        dependent cached plans and feedback entries."""
        self.schema_version += 1
        if table is None:
            self.plan_cache.clear()
            self.feedback.clear()
            self.estimator.clear()
        else:
            self.plan_cache.invalidate_table(table)
            self.feedback.invalidate_table(table)
            self.estimator.invalidate_table(table)

    # -- DDL -------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Column | tuple[str, str]] | Sequence[str],
        rows_per_page: int = 32,
        index_order: int = 32,
        partition_by: PartitionSpec | None = None,
    ) -> Table | PartitionedTable:
        """Create a table. Columns may be Column objects, (name, type)
        tuples, or bare names (typed int). ``partition_by`` creates a
        hash/range-partitioned table whose retrievals scatter-gather
        across per-partition engines (:mod:`repro.partition`)."""
        if name in self.tables:
            raise CatalogError(f"table {name!r} already exists")
        normalized: list[Column] = []
        for column in columns:
            if isinstance(column, Column):
                normalized.append(column)
            elif isinstance(column, tuple):
                normalized.append(Column(*column))
            else:
                normalized.append(Column(column))
        table: Table | PartitionedTable
        if partition_by is not None:
            table = PartitionedTable(
                name, normalized, partition_by, self,
                rows_per_page=rows_per_page, index_order=index_order,
                config=self.config,
            )
        else:
            table = Table(
                name, normalized, self.buffer_pool,
                rows_per_page=rows_per_page, index_order=index_order,
                config=self.config,
            )
        self.tables[name] = table
        # index DDL on the table must invalidate cached plans too
        table.on_schema_change = lambda: self.schema_changed(name)
        self.schema_changed(name)
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def drop_table(self, name: str) -> None:
        """Remove a table, releasing its pages from cache and disk.

        The buffer pool and pager are shared by every table, so leaving a
        dropped table's heap and index pages behind would squat cache
        capacity and distort every later query's hit rate.
        """
        if name not in self.tables:
            raise CatalogError(f"unknown table {name!r}")
        table = self.tables.pop(name)
        if isinstance(table, PartitionedTable):
            for child in table.partitions:
                self._release_pages(child.heap.name, child.buffer_pool)
                for info in child.indexes.values():
                    self._release_pages(info.btree.name, child.buffer_pool)
        else:
            self._release_pages(table.heap.name)
            for info in table.indexes.values():
                self._release_pages(info.btree.name)
        self.schema_changed(name)

    def _release_pages(self, owner: str, pool: BufferPool | None = None) -> None:
        """Evict and free every page belonging to ``owner``."""
        cache = pool if pool is not None else self.buffer_pool
        for page in list(self.pager.pages_of(owner)):
            cache.evict(page.page_id)
            self.pager.free(page.page_id)

    # -- partition workers --------------------------------------------------------

    def worker_pool(self):
        """The shared partition worker pool (created lazily, registered
        for drain-at-exit). None while ``partition_workers <= 1`` — the
        serial scatter path never touches threads."""
        if self.config.partition_workers <= 1:
            return None
        if self._worker_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._worker_pool = ThreadPoolExecutor(
                max_workers=self.config.partition_workers,
                thread_name_prefix="repro-partition",
            )
            _LIVE_WORKER_POOLS.add(self._worker_pool)
        return self._worker_pool

    def close_worker_pool(self, wait: bool = True) -> None:
        """Shut the worker pool down (idempotent; server shutdown calls
        this after cancelling every session, so no scatters are in
        flight when it runs)."""
        pool, self._worker_pool = self._worker_pool, None
        if pool is not None:
            _LIVE_WORKER_POOLS.discard(pool)
            pool.shutdown(wait=wait, cancel_futures=not wait)

    # -- cache control ------------------------------------------------------------

    def interference_tick(self) -> int:
        """Simulate unrelated queries disturbing the cache (Section 3(c))."""
        if self.interference_rate <= 0:
            return 0
        return self.buffer_pool.evict_random(self.interference_rate, self._interference_rng)

    def cold_cache(self) -> None:
        """Drop the whole cache — the shared pool and every partition's
        private pool (benchmark cold starts)."""
        self.buffer_pool.clear()
        for table in self.tables.values():
            if isinstance(table, PartitionedTable):
                for child in table.partitions:
                    child.buffer_pool.clear()

    # -- SQL ------------------------------------------------------------------------

    def default_connection(self):
        """The lazily-created :class:`repro.api.Connection` over this
        database that backs the :meth:`execute`/:meth:`explain` shims."""
        if self._default_connection is None:
            from repro.api import Connection

            self._default_connection = Connection(self)
        return self._default_connection

    def execute(
        self,
        sql: str,
        host_vars: Mapping[str, Any] | None = None,
        goal: OptimizationGoal = OptimizationGoal.DEFAULT,
    ):
        """Parse, bind, and execute an SQL statement.

        .. deprecated:: 1.2
            Thin wrapper over :meth:`repro.api.Connection.execute`; routes
            through :meth:`default_connection`, i.e. the multi-query
            scheduler — with no concurrent sessions the step sequence is
            identical to direct execution. Returns the *legacy* result
            object (:class:`repro.sql.executor.QueryResult` /
            :class:`repro.sql.ddl.DdlResult`); prefer :func:`repro.connect`
            and the unified :class:`repro.result.Result` in new code.
        """
        warnings.warn(
            "Database.execute is deprecated; use repro.connect() and "
            "Connection.execute, which returns the unified repro.Result",
            DeprecationWarning,
            stacklevel=2,
        )
        result = self.default_connection().execute(sql, host_vars, goal=goal)
        return result.raw if result.raw is not None else result

    def explain(self, sql: str) -> str:
        """Describe the logical plan and inferred per-retrieval goals.

        .. deprecated:: 1.2
            Thin wrapper over :meth:`repro.api.Connection.explain`; returns
            the rendered text only. Prefer ``connection.explain(...)``,
            which returns a :class:`repro.result.Result`.
        """
        warnings.warn(
            "Database.explain is deprecated; use repro.connect() and "
            "Connection.explain, which returns the unified repro.Result",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.default_connection().explain(sql).text

"""repro — a reproduction of "Dynamic Query Optimization in Rdb/VMS"
(Gennady Antoshenkov, ICDE 1993).

The package implements the paper's dynamic single-table optimizer —
competition-based strategy selection over Tscan / Sscan / Fscan / Jscan —
together with every substrate it needs: a simulated storage engine with
physical-I/O accounting, B+-tree indexes with descent-to-split estimation
and sampling, the Section 2 selectivity-distribution toolkit, the Section 3
competition framework, an SQL front end with the Rdb/VMS extensions, and
the static-optimizer / static-Jscan baselines the paper argues against.

Quick start::

    from repro import Database, col, var

    db = Database()
    families = db.create_table("FAMILIES", [("ID", "int"), ("AGE", "int")])
    families.insert_many((i, age) for i, age in enumerate([5, 30, 70, 95]))
    families.create_index("IX_AGE", ["AGE"])

    result = families.select(where=col("AGE") >= var("A1"),
                             host_vars={"A1": 60})
    print(result.rows, result.description)

    print(db.execute("select * from FAMILIES where AGE >= :A1 "
                     "optimize for fast first", {"A1": 60}).rows)
"""

from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.db.catalog import Column
from repro.db.session import Database
from repro.db.table import Table
from repro.engine.goals import OptimizationGoal, infer_goals
from repro.engine.retrieval import RetrievalRequest, RetrievalResult
from repro.errors import ReproError
from repro.expr.ast import col, lit, var

__version__ = "1.0.0"

__all__ = [
    "Column",
    "Database",
    "DEFAULT_CONFIG",
    "EngineConfig",
    "OptimizationGoal",
    "RetrievalRequest",
    "RetrievalResult",
    "ReproError",
    "Table",
    "col",
    "infer_goals",
    "lit",
    "var",
    "__version__",
]

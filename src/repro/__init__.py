"""repro — a reproduction of "Dynamic Query Optimization in Rdb/VMS"
(Gennady Antoshenkov, ICDE 1993).

The package implements the paper's dynamic single-table optimizer —
competition-based strategy selection over Tscan / Sscan / Fscan / Jscan —
together with every substrate it needs: a simulated storage engine with
physical-I/O accounting, B+-tree indexes with descent-to-split estimation
and sampling, the Section 2 selectivity-distribution toolkit, the Section 3
competition framework, an SQL front end with the Rdb/VMS extensions, and
the static-optimizer / static-Jscan baselines the paper argues against.

Statements are served by a multi-query scheduler: open a connection with
:func:`repro.connect`, then execute SQL on it — or open several sessions
and watch their queries interleave over one shared buffer pool.

Quick start::

    import repro

    conn = repro.connect()
    conn.execute("create table FAMILIES (ID int, AGE int)")
    conn.execute("create index IX_AGE on FAMILIES (AGE)")
    for i, age in enumerate([5, 30, 70, 95]):
        conn.execute(f"insert into FAMILIES values ({i}, {age})")

    result = conn.execute("select * from FAMILIES where AGE >= :A1 "
                          "optimize for fast first", {"A1": 60})
    print(result.rows)
"""

from repro.api import Connection, connect
from repro.cache import FeedbackStore, PlanCache, PreparedStatement
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.db.catalog import Column
from repro.db.partitioned import PartitionedTable
from repro.db.session import Database
from repro.db.table import Table
from repro.partition import PartitionSpec, PartitionStats
from repro.engine.goals import OptimizationGoal, infer_goals
from repro.engine.retrieval import RetrievalRequest, RetrievalResult
from repro.errors import QueryCancelledError, ReproError, ServerError
from repro.expr.ast import col, lit, var
from repro.result import Result, ResultMetrics
from repro.obs import (
    JsonlSink,
    LogHistogram,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    should_sample,
)
from repro.server import (
    MetricsRegistry,
    QueryHandle,
    QueryServer,
    QueryState,
    ServerSession,
    SessionMetrics,
)

__version__ = "1.2.0"

__all__ = [
    "Column",
    "Connection",
    "Database",
    "DEFAULT_CONFIG",
    "EngineConfig",
    "FeedbackStore",
    "JsonlSink",
    "LogHistogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OptimizationGoal",
    "PartitionSpec",
    "PartitionStats",
    "PartitionedTable",
    "PlanCache",
    "PreparedStatement",
    "QueryCancelledError",
    "QueryHandle",
    "QueryServer",
    "QueryState",
    "Result",
    "ResultMetrics",
    "RetrievalRequest",
    "RetrievalResult",
    "ReproError",
    "ServerError",
    "ServerSession",
    "SessionMetrics",
    "Span",
    "Table",
    "Tracer",
    "col",
    "connect",
    "infer_goals",
    "lit",
    "should_sample",
    "var",
    "__version__",
]

"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StorageError(ReproError):
    """Errors raised by the storage layer (pager, buffer pool, heap files)."""


class PageNotFoundError(StorageError):
    """A page id was requested that the simulated disk has never written."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} does not exist on the simulated disk")
        self.page_id = page_id


class RecordNotFoundError(StorageError):
    """A RID referenced a slot that holds no record."""


class BTreeError(ReproError):
    """Errors raised by the B+-tree index implementation."""


class ExpressionError(ReproError):
    """Errors raised while building or evaluating predicate expressions."""


class BindingError(ReproError):
    """A name (table, column, host variable) could not be resolved."""

    def __init__(self, name: str, kind: str = "name") -> None:
        super().__init__(f"unknown {kind}: {name!r}")
        self.name = name
        self.kind = kind


class SqlSyntaxError(ReproError):
    """The SQL tokenizer or parser rejected the input text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class CatalogError(ReproError):
    """Catalog inconsistencies: duplicate tables, unknown indexes, etc."""


class DistributionError(ReproError):
    """Errors in the selectivity-distribution toolkit (Section 2)."""


class CompetitionError(ReproError):
    """Errors in the competition framework (Section 3)."""


class RetrievalError(ReproError):
    """Errors raised by the single-table retrieval engine (Sections 4-7)."""


class ServerError(ReproError):
    """Errors raised by the multi-query scheduler (:mod:`repro.server`)."""


class QueryCancelledError(ServerError):
    """The query was cancelled (explicitly or by its deadline) before
    producing a result."""

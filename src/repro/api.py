"""The unified connection API: ``repro.connect()``.

One entry point replaces the historical trio of ``Database(...)`` +
``db.execute(...)`` + ``db.explain(...)``: a :class:`Connection` owns a
:class:`~repro.db.session.Database` and fronts it with a
:class:`~repro.server.QueryServer`, so *every* statement — including the
single-user ones — runs through the multi-query scheduler. With one
session and no concurrent work the step sequence is identical to direct
execution; open more sessions and their queries interleave over the shared
buffer pool, which is where the paper's Section 3(c) cache uncertainty
comes from.

Quick start::

    import repro

    conn = repro.connect(buffer_capacity=128)
    conn.execute("create table T (ID int, AGE int)")
    result = conn.execute("select * from T where AGE >= :A1",
                          {"A1": 60}, goal=repro.OptimizationGoal.FAST_FIRST)
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.db.session import Database
from repro.engine.goals import OptimizationGoal
from repro.result import Result
from repro.server.scheduler import QueryHandle, QueryServer, ServerSession


class Connection:
    """A client connection: one database, one scheduler, many sessions.

    The connection's own :meth:`execute`/:meth:`explain` run on a default
    session named ``"main"``; :meth:`session` opens further concurrent
    sessions that share the buffer pool and compete for engine steps.
    """

    def __init__(
        self,
        db: Database,
        max_concurrency: int = 4,
        scheduling: str = "round-robin",
        trace_sink: Any | None = None,
        flight_sink: Any | None = None,
        clock: Any | None = None,
    ) -> None:
        self.db = db
        server_kwargs: dict[str, Any] = {}
        if clock is not None:
            server_kwargs["clock"] = clock
        self.server = QueryServer(
            db,
            max_concurrency=max_concurrency,
            scheduling=scheduling,
            trace_sink=trace_sink,
            flight_sink=flight_sink,
            **server_kwargs,
        )
        self._main = self.server.session("main")
        self._closed = False

    # -- statements --------------------------------------------------------

    def execute(
        self,
        sql: str,
        host_vars: Mapping[str, Any] | None = None,
        goal: OptimizationGoal = OptimizationGoal.DEFAULT,
        deadline: int | None = None,
    ) -> Result:
        """Run one statement to completion through the scheduler.

        Returns the unified :class:`~repro.result.Result` — ``rows``,
        ``columns``, ``rowcount``, ``plan``, ``metrics`` regardless of the
        statement kind; the legacy result object stays reachable as
        ``result.raw``. ``deadline`` is a budget of scheduling quanta
        (each up to ``config.batch_size`` engine steps); exceeding it
        cancels the query and raises
        :class:`~repro.errors.QueryCancelledError`.
        """
        self._check_open()
        return Result.wrap(
            self._main.execute(sql, host_vars, goal=goal, deadline=deadline)
        )

    def submit(
        self,
        sql: str,
        host_vars: Mapping[str, Any] | None = None,
        goal: OptimizationGoal = OptimizationGoal.DEFAULT,
        deadline: int | None = None,
    ) -> QueryHandle:
        """Queue a statement without driving it; pair with ``handle.wait()``
        or ``connection.server.run_until_idle()``."""
        self._check_open()
        return self._main.submit(sql, host_vars, goal=goal, deadline=deadline)

    def prepare(self, sql: str) -> "PreparedStatement":
        """Parse and bind a SELECT once; returns a reusable
        :class:`~repro.cache.PreparedStatement`.

        Use ``?`` placeholders (bound positionally) or ``:name`` host
        variables (bound by mapping)::

            stmt = conn.prepare("select * from T where AGE >= ?")
            young = stmt.execute([30])
            old = stmt.execute([60])

        The compiled plan lives in the server-wide plan cache (when
        enabled), shared with every session and with ad-hoc executions of
        the same normalized SQL; DDL invalidates it and the next execution
        transparently re-prepares (or fails safe with a binding error).
        """
        self._check_open()
        from repro.cache.prepared import PreparedStatement

        return PreparedStatement(self._main, sql)

    def explain(
        self,
        sql: str,
        host_vars: Mapping[str, Any] | None = None,
        analyze: bool = False,
    ) -> Result:
        """Render the logical plan with inferred per-retrieval goals.

        Returns a :class:`~repro.result.Result` of kind ``"explain"`` whose
        ``text`` carries the report (``str(result)`` gives the same). With
        ``analyze=True`` the statement is *executed* through the scheduler
        under a forced tracer and the plan is rendered next to the recorded
        span timeline (actual rows, fetches, switches, abandons,
        per-strategy time) — the API form of ``EXPLAIN ANALYZE <sql>``.
        """
        self._check_open()
        if analyze:
            result = self._main.execute(f"explain analyze {sql}", host_vars)
            return Result.wrap(result)
        from repro.sql.executor import explain_sql

        return Result.from_explain_text(explain_sql(self.db, sql))

    def audit(
        self,
        sql: str,
        host_vars: Mapping[str, Any] | None = None,
    ):
        """Execute one SELECT with a full decision audit and counterfactual
        replay of the rejected strategies — the API form of
        ``EXPLAIN COMPETE <sql>``.

        Returns the :class:`~repro.obs.regret.CompeteReport`: per-decision
        realized regret, per-retrieval chosen-vs-rejected replay costs, and
        the statement's complete decision log (``report.audit``). Replays
        run on shadow buffer pools, off the scheduler's hot path, capped by
        ``config.replay_budget_steps``.
        """
        self._check_open()
        result = self._main.execute(f"explain compete {sql}", host_vars)
        return result.compete

    # -- sessions & metrics ------------------------------------------------

    def session(self, name: str | None = None) -> ServerSession:
        """Open an additional concurrent session on this connection."""
        self._check_open()
        return self.server.session(name)

    @property
    def metrics(self):
        """The server-wide :class:`~repro.server.MetricsRegistry`."""
        return self.server.metrics

    def health(self):
        """Sample the continuous monitor now and return the current
        :class:`~repro.obs.health.HealthReport` (status, findings, latest
        window). Returns a ``disabled``-status report when monitoring is
        off (``config.monitor_enabled=False`` or ``monitor_interval=0``)."""
        self._check_open()
        return self.server.health()

    # -- catalog passthroughs ----------------------------------------------

    def table(self, name: str):
        """Look up a table by name (catalog passthrough)."""
        return self.db.table(name)

    def create_table(self, name: str, columns, **kwargs):
        """Create a table (catalog passthrough)."""
        return self.db.create_table(name, columns, **kwargs)

    def drop_table(self, name: str) -> None:
        """Drop a table, releasing its cached and on-disk pages."""
        self.db.drop_table(name)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Cancel any in-flight queries, flush and close the trace/flight
        sinks, and refuse further statements."""
        if self._closed:
            return
        self.server.shutdown()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            from repro.errors import ServerError

            raise ServerError("connection is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    buffer_capacity: int = 256,
    config: EngineConfig = DEFAULT_CONFIG,
    max_concurrency: int = 4,
    scheduling: str = "round-robin",
    db: Database | None = None,
    trace_sink: Any | None = None,
    flight_sink: Any | None = None,
    clock: Any | None = None,
) -> Connection:
    """Open a :class:`Connection` — the package's front door.

    Creates a fresh in-memory :class:`~repro.db.session.Database` (or wraps
    the one passed via ``db``) and fronts it with a multi-query scheduler.
    ``scheduling`` is ``"round-robin"`` or ``"weighted"``. ``trace_sink``
    receives the finished span tree of every traced query (anything with
    ``write(tree_dict)``, e.g. :class:`repro.obs.JsonlSink`); queries are
    traced when sampled by ``config.trace_sample_rate`` or run via
    EXPLAIN ANALYZE. ``flight_sink`` receives the flight recorder's
    captures — one record (span tree + decision log) per query exceeding
    ``config.slow_query_ms`` or ``config.regret_threshold``, plus incident
    bundles from the health monitor. ``clock`` injects a monotonic clock
    (default ``time.perf_counter``) for latency measurement and monitor
    intervals — tests pass a :class:`repro.obs.SteppingClock` to make
    time-dependent behaviour deterministic.
    """
    if db is None:
        db = Database(buffer_capacity=buffer_capacity, config=config)
    return Connection(
        db,
        max_concurrency=max_concurrency,
        scheduling=scheduling,
        trace_sink=trace_sink,
        flight_sink=flight_sink,
        clock=clock,
    )

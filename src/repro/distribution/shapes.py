"""Shape metrics and classification of selectivity distributions.

Quantifies the paper's qualitative vocabulary: L-shapes ("50% of the
distribution in a small area around zero"), right-concentrated mirror
L-shapes, bells, and near-uniform shapes. The benchmarks use these metrics
to turn Figures 2.1/2.2 into checkable numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distribution.density import SelectivityDistribution
from repro.distribution.hyperbola import fit_truncated_hyperbola


@dataclass(frozen=True)
class ShapeMetrics:
    """Summary statistics of a selectivity distribution."""

    mean: float
    std: float
    median: float
    skewness: float
    #: probability mass in [0, 0.05] — the "small area around zero"
    mass_near_zero: float
    #: probability mass in [0.95, 1]
    mass_near_one: float
    #: best truncated-hyperbola relative error (paper's fit metric)
    hyperbola_error: float
    #: fitted hyperbola offset b (small = sharply skewed)
    hyperbola_b: float
    #: True when the best hyperbola is right-concentrated
    hyperbola_mirrored: bool


#: thresholds used by :func:`classify_shape`
_NEAR_ZERO = 0.05
_L_SHAPE_MASS = 0.35
_UNIFORM_TV = 0.08
_BELL_STD = 0.12


def shape_metrics(p: SelectivityDistribution) -> ShapeMetrics:
    """Compute all shape metrics for ``p``."""
    fit = fit_truncated_hyperbola(p)
    return ShapeMetrics(
        mean=p.mean(),
        std=p.std(),
        median=p.median(),
        skewness=p.skewness(),
        mass_near_zero=p.mass_below(_NEAR_ZERO),
        mass_near_one=p.mass_above(1.0 - _NEAR_ZERO),
        hyperbola_error=fit.relative_error,
        hyperbola_b=fit.b,
        hyperbola_mirrored=fit.mirrored,
    )


def classify_shape(p: SelectivityDistribution) -> str:
    """Label a distribution: ``l-shape-left``, ``l-shape-right``, ``bell``,
    ``uniform``, or ``spread``.

    The labels mirror the paper's taxonomy; boundaries are necessarily
    conventional and documented by the module constants.
    """
    uniform = SelectivityDistribution.uniform(p.bins)
    if p.total_variation_distance(uniform) < _UNIFORM_TV:
        return "uniform"
    mass_zero = p.mass_below(_NEAR_ZERO)
    mass_one = p.mass_above(1.0 - _NEAR_ZERO)
    if mass_zero >= _L_SHAPE_MASS and mass_zero > 2 * mass_one:
        return "l-shape-left"
    if mass_one >= _L_SHAPE_MASS and mass_one > 2 * mass_zero:
        return "l-shape-right"
    if p.std() < _BELL_STD:
        return "bell"
    return "spread"


def half_mass_width(p: SelectivityDistribution, from_left: bool = True) -> float:
    """Width of the smallest interval anchored at an end holding 50% mass.

    For an L-shape at zero this is the ``c`` of the paper's Section 3 cost
    model: "50% probability concentrated in small cost regions [0, c]".
    """
    if from_left:
        return p.quantile(0.5)
    return 1.0 - p.quantile(0.5)

"""Discrete selectivity distributions on [0, 1].

A :class:`SelectivityDistribution` stores probability *weights* on ``n``
equal bins of ``[0, 1]`` (bin centers at ``(i + 0.5)/n``). Weights sum to 1;
the density at a bin is ``weight * n``. The paper's Section 2 experiments
are "all based on numeric computations" over exactly this kind of
point/weight representation.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.errors import DistributionError

DEFAULT_BINS = 256


class SelectivityDistribution:
    """A probability distribution of selectivity ``s`` in ``[0, 1]``."""

    __slots__ = ("weights",)

    def __init__(self, weights: np.ndarray | Iterable[float], normalize: bool = True) -> None:
        array = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights,
                           dtype=float)
        if array.ndim != 1 or array.size < 2:
            raise DistributionError("weights must be a 1-D array with >= 2 bins")
        if np.any(array < -1e-12):
            raise DistributionError("weights must be non-negative")
        array = np.clip(array, 0.0, None)
        total = array.sum()
        if normalize:
            if total <= 0:
                raise DistributionError("weights must not all be zero")
            array = array / total
        self.weights = array

    # -- constructors ---------------------------------------------------------

    @classmethod
    def uniform(cls, bins: int = DEFAULT_BINS) -> "SelectivityDistribution":
        """Total ignorance: uniform density on [0, 1]."""
        return cls(np.full(bins, 1.0 / bins), normalize=False)

    @classmethod
    def point(cls, s: float, bins: int = DEFAULT_BINS) -> "SelectivityDistribution":
        """A (near-)certain selectivity: all mass in the bin containing ``s``."""
        if not 0.0 <= s <= 1.0:
            raise DistributionError(f"selectivity {s} outside [0, 1]")
        weights = np.zeros(bins)
        index = min(bins - 1, int(s * bins))
        weights[index] = 1.0
        return cls(weights, normalize=False)

    @classmethod
    def bell(cls, mean: float, std: float, bins: int = DEFAULT_BINS) -> "SelectivityDistribution":
        """A truncated-normal "bell" around an estimate (mean m, error e)."""
        if std <= 0:
            return cls.point(mean, bins)
        centers = (np.arange(bins) + 0.5) / bins
        weights = np.exp(-0.5 * ((centers - mean) / std) ** 2)
        return cls(weights)

    @classmethod
    def from_function(
        cls, fn: Callable[[np.ndarray], np.ndarray], bins: int = DEFAULT_BINS
    ) -> "SelectivityDistribution":
        """Build from a (not necessarily normalized) density function."""
        centers = (np.arange(bins) + 0.5) / bins
        return cls(np.clip(fn(centers), 0.0, None))

    @classmethod
    def from_samples(
        cls, samples: Iterable[float], bins: int = DEFAULT_BINS
    ) -> "SelectivityDistribution":
        """Empirical distribution from observed selectivities."""
        array = np.clip(np.asarray(list(samples), dtype=float), 0.0, 1.0)
        if array.size == 0:
            raise DistributionError("no samples")
        histogram, _ = np.histogram(array, bins=bins, range=(0.0, 1.0))
        return cls(histogram.astype(float))

    # -- basic accessors -----------------------------------------------------

    @property
    def bins(self) -> int:
        """Number of grid bins."""
        return self.weights.size

    @property
    def centers(self) -> np.ndarray:
        """Bin center coordinates."""
        return (np.arange(self.bins) + 0.5) / self.bins

    @property
    def density(self) -> np.ndarray:
        """Probability density values at bin centers."""
        return self.weights * self.bins

    # -- moments & quantiles ---------------------------------------------------

    def mean(self) -> float:
        """Expected selectivity."""
        return float(np.dot(self.weights, self.centers))

    def variance(self) -> float:
        """Variance of selectivity."""
        mean = self.mean()
        return float(np.dot(self.weights, (self.centers - mean) ** 2))

    def std(self) -> float:
        """Standard deviation ("spread" in the paper's wording)."""
        return float(np.sqrt(self.variance()))

    def skewness(self) -> float:
        """Third standardized moment (0 for symmetric shapes)."""
        std = self.std()
        if std == 0:
            return 0.0
        mean = self.mean()
        third = float(np.dot(self.weights, (self.centers - mean) ** 3))
        return third / std**3

    def cdf(self) -> np.ndarray:
        """Cumulative weights at bin right edges."""
        return np.cumsum(self.weights)

    def mass_below(self, s: float) -> float:
        """P(selectivity <= s), linear within the boundary bin."""
        if s <= 0:
            return 0.0
        if s >= 1:
            return 1.0
        position = s * self.bins
        full = int(position)
        mass = float(self.weights[:full].sum())
        if full < self.bins:
            mass += float(self.weights[full]) * (position - full)
        return mass

    def mass_above(self, s: float) -> float:
        """P(selectivity > s)."""
        return 1.0 - self.mass_below(s)

    def quantile(self, q: float) -> float:
        """Smallest s with CDF(s) >= q."""
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level {q} outside [0, 1]")
        cdf = self.cdf()
        index = int(np.searchsorted(cdf, q, side="left"))
        index = min(index, self.bins - 1)
        return float((index + 0.5) / self.bins)

    def median(self) -> float:
        """The 50% point — central to the paper's "50% of the distribution
        is concentrated in a small area around zero" observation."""
        return self.quantile(0.5)

    # -- transforms -------------------------------------------------------------

    def mirrored(self) -> "SelectivityDistribution":
        """Mirror symmetry around s = 1/2 (the NOT transformation)."""
        return SelectivityDistribution(self.weights[::-1].copy(), normalize=False)

    def rebinned(self, bins: int) -> "SelectivityDistribution":
        """Resample onto a different grid size (mass-preserving)."""
        if bins == self.bins:
            return self
        edges = np.linspace(0.0, 1.0, bins + 1)
        cdf = np.concatenate(([0.0], self.cdf()))
        own_edges = np.linspace(0.0, 1.0, self.bins + 1)
        cdf_at = np.interp(edges, own_edges, cdf)
        return SelectivityDistribution(np.diff(cdf_at))

    # -- comparison ---------------------------------------------------------------

    def total_variation_distance(self, other: "SelectivityDistribution") -> float:
        """Half the L1 distance between the two weight vectors."""
        if other.bins != self.bins:
            other = other.rebinned(self.bins)
        return float(0.5 * np.abs(self.weights - other.weights).sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SelectivityDistribution(bins={self.bins}, mean={self.mean():.4f}, "
            f"std={self.std():.4f}, median={self.median():.4f})"
        )

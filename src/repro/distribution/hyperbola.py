"""Truncated hyperbola model and fitting.

Section 2: "All asymmetrical transformations of uniform distribution are
well approximated (but not fully matched) by truncated hyperbolas. For
instance, truncated hyperbolas fit &X with relative error 1/4, &&X with
error 1/7, &&&X with error 1/23."

The model is the family ``h(s) = a / (s + b)`` on ``[0, 1]`` (optionally
mirrored for OR-dominant, right-concentrated shapes), with ``a`` fixed by
normalization and ``b > 0`` controlling skewness (small ``b`` = sharp
L-shape). The paper's relative error of a fit ``h`` to a density ``p`` is

    ``max_s |p(s) - h(s)| / (max_s p(s) - min_s p(s))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.distribution.density import SelectivityDistribution
from repro.errors import DistributionError


@dataclass(frozen=True)
class HyperbolaFit:
    """A fitted truncated hyperbola."""

    #: scale parameter (normalization constant)
    a: float
    #: offset parameter; skewness grows as b -> 0
    b: float
    #: True when the hyperbola is mirrored (mass concentrated near s = 1)
    mirrored: bool
    #: the paper's relative error of the fit
    relative_error: float

    def density(self, bins: int) -> np.ndarray:
        """Evaluate the fitted density on a grid of ``bins`` bin centers."""
        centers = (np.arange(bins) + 0.5) / bins
        s = 1.0 - centers if self.mirrored else centers
        return self.a / (s + self.b)

    def distribution(self, bins: int = 256) -> SelectivityDistribution:
        """The fitted hyperbola as a distribution object."""
        return SelectivityDistribution(self.density(bins))


def hyperbola_weights(b: float, bins: int, mirrored: bool = False) -> np.ndarray:
    """Normalized bin weights of the truncated hyperbola with offset ``b``."""
    if b <= 0:
        raise DistributionError("hyperbola offset b must be positive")
    edges = np.linspace(0.0, 1.0, bins + 1)
    # integral of 1/(s+b) over each bin, exactly
    mass = np.log((edges[1:] + b) / (edges[:-1] + b))
    weights = mass / np.log((1.0 + b) / b)
    if mirrored:
        weights = weights[::-1]
    return weights


def truncated_hyperbola(
    b: float, bins: int = 256, mirrored: bool = False
) -> SelectivityDistribution:
    """Construct the truncated-hyperbola distribution directly."""
    return SelectivityDistribution(hyperbola_weights(b, bins, mirrored), normalize=False)


def _relative_error(p_density: np.ndarray, h_density: np.ndarray) -> float:
    spread = p_density.max() - p_density.min()
    if spread <= 0:
        # a flat density: relative error is 0 iff the fit is flat too
        return float(np.max(np.abs(p_density - h_density)))
    return float(np.max(np.abs(p_density - h_density)) / spread)


def fit_truncated_hyperbola(
    p: SelectivityDistribution, mirrored: bool | None = None
) -> HyperbolaFit:
    """Fit ``a / (s + b)`` to a distribution, minimizing the paper's
    minimax relative error over ``b`` (and the mirror orientation when
    ``mirrored`` is None)."""
    orientations = [mirrored] if mirrored is not None else [False, True]
    best: HyperbolaFit | None = None
    p_density = p.density
    bins = p.bins
    for orient in orientations:

        def error_for(log_b: float, orient=orient) -> float:
            b = float(np.exp(log_b))
            # compare bin-averaged densities (exact hyperbola bin integrals),
            # which stays meaningful for spiky, near-singular L-shapes
            h_density = hyperbola_weights(b, bins, orient) * bins
            return _relative_error(p_density, h_density)

        result = optimize.minimize_scalar(
            error_for, bounds=(np.log(1e-6), np.log(1e3)), method="bounded",
            options={"xatol": 1e-4},
        )
        b = float(np.exp(result.x))
        a = 1.0 / np.log((1.0 + b) / b)
        fit = HyperbolaFit(
            a=a, b=b, mirrored=bool(orient),
            relative_error=error_for(result.x),
        )
        if best is None or fit.relative_error < best.relative_error:
            best = fit
    assert best is not None
    return best

"""AND / OR / NOT / JOIN transformations of selectivity distributions.

Implements the paper's Section 2 numeric procedure: split both operand
distributions into weighted point estimates, combine every point pair
through the correlation-parameterized selectivity formula, and re-bin the
resulting point/weight cloud into an approximate density.

Correlation semantics (for AND of selectivities ``sx``, ``sy``):

* ``c = +1``  ->  ``min(sx, sy)``          (largest possible intersection)
* ``c = 0``   ->  ``sx * sy``              (independence)
* ``c = -1``  ->  ``max(0, sx + sy - 1)``  (smallest possible intersection)
* other ``c`` -> linear interpolation between the adjacent anchors
* unknown     -> uniform mixture of ``c`` over ``[-1, +1]``

OR is the De Morgan mirror: ``p_{X|Y}`` is the mirror symmetry of
``p_{~X & ~Y}``. JOIN "behaves almost identically to the AND operator" on
key-domain selectivities, so :func:`join_c` delegates to AND with its own
name kept for call-site clarity.
"""

from __future__ import annotations

import numpy as np

from repro.distribution.density import SelectivityDistribution
from repro.errors import DistributionError

#: number of correlation samples for the "unknown correlation" mixture
UNKNOWN_CORRELATION_SAMPLES = 21


def negate(px: SelectivityDistribution) -> SelectivityDistribution:
    """``p_{~X}(s) = p_X(1 - s)`` — mirror symmetry."""
    return px.mirrored()


def _and_points(sx: np.ndarray, sy: np.ndarray, c: float) -> np.ndarray:
    """Selectivity of X AND Y for point selectivities under correlation c."""
    independent = sx * sy
    if c >= 0:
        anchor = np.minimum(sx, sy)
        return (1.0 - c) * independent + c * anchor
    anchor = np.maximum(0.0, sx + sy - 1.0)
    return (1.0 + c) * independent + (-c) * anchor


def _combine(
    px: SelectivityDistribution,
    py: SelectivityDistribution,
    correlations: np.ndarray,
) -> SelectivityDistribution:
    """Weighted-point AND combination, averaged over the given correlations."""
    if py.bins != px.bins:
        py = py.rebinned(px.bins)
    bins = px.bins
    sx = px.centers[:, None]
    sy = py.centers[None, :]
    weight = (px.weights[:, None] * py.weights[None, :]).ravel()
    accumulated = np.zeros(bins)
    for c in correlations:
        s = _and_points(sx, sy, float(c)).ravel()
        index = np.minimum((s * bins).astype(int), bins - 1)
        accumulated += np.bincount(index, weights=weight, minlength=bins)
    return SelectivityDistribution(accumulated)


def and_c(
    px: SelectivityDistribution, py: SelectivityDistribution, c: float
) -> SelectivityDistribution:
    """``p_{X &_c Y}`` under an assumed correlation ``c`` in [-1, +1]."""
    if not -1.0 <= c <= 1.0:
        raise DistributionError(f"correlation {c} outside [-1, +1]")
    return _combine(px, py, np.array([c]))


def and_unknown(
    px: SelectivityDistribution,
    py: SelectivityDistribution,
    samples: int = UNKNOWN_CORRELATION_SAMPLES,
) -> SelectivityDistribution:
    """``p_{X & Y}`` under the unknown-correlation (uniform mixture) assumption."""
    return _combine(px, py, np.linspace(-1.0, 1.0, samples))


def or_c(
    px: SelectivityDistribution, py: SelectivityDistribution, c: float
) -> SelectivityDistribution:
    """``p_{X |_c Y}`` — De Morgan dual: mirror of AND of the mirrors."""
    return negate(and_c(negate(px), negate(py), c))


def or_unknown(
    px: SelectivityDistribution,
    py: SelectivityDistribution,
    samples: int = UNKNOWN_CORRELATION_SAMPLES,
) -> SelectivityDistribution:
    """``p_{X | Y}`` under the unknown-correlation assumption."""
    return negate(and_unknown(negate(px), negate(py), samples))


def join_c(
    px: SelectivityDistribution, py: SelectivityDistribution, c: float
) -> SelectivityDistribution:
    """JOIN on a shared unique key: AND over key-domain selectivities."""
    return and_c(px, py, c)


def join_unknown(
    px: SelectivityDistribution, py: SelectivityDistribution
) -> SelectivityDistribution:
    """JOIN under the unknown-correlation assumption."""
    return and_unknown(px, py)


def apply_chain(
    px: SelectivityDistribution,
    chain: str,
    correlation: float | None = None,
    operand: str = "original",
) -> SelectivityDistribution:
    """Apply a chain of ``&`` / ``|`` / ``~`` operators to ``px``.

    The paper's shorthand ``&X`` means ``X & Y`` with ``p_X == p_Y``. For a
    chain like ``&&X`` two readings exist and both are supported:

    * ``operand="original"`` (default): each operator combines the running
      result with a fresh predicate distributed like the *original* ``px``
      — i.e. ``&&X`` is ``(X & Y) & Z`` with ``Y, Z ~ p_X``. This models a
      growing conjunction of similar predicates, the physical situation of
      "application of several ANDs".
    * ``operand="self"``: each operator combines the running result with an
      independent variable distributed like the *running result* — the
      strictly recursive reading of the unary notation.

    ``correlation`` of ``None`` selects the unknown-correlation mixture.
    The chain is applied left to right: ``apply_chain(p, "&&|")`` computes
    ``|(&(&(p)))`` in the paper's prefix notation.
    """
    if operand not in ("original", "self"):
        raise DistributionError(f"unknown operand mode {operand!r}")
    result = px
    for op in chain:
        other = px if operand == "original" else result
        if op == "&":
            result = (
                and_unknown(result, other)
                if correlation is None
                else and_c(result, other, correlation)
            )
        elif op == "|":
            result = (
                or_unknown(result, other)
                if correlation is None
                else or_c(result, other, correlation)
            )
        elif op == "~":
            result = negate(result)
        else:
            raise DistributionError(f"unknown chain operator {op!r}")
    return result

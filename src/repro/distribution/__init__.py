"""Selectivity-distribution toolkit (Section 2 of the paper).

Knowledge about a predicate's selectivity is a probability density on
``[0, 1]``. This package models such densities on a discrete grid
(:mod:`repro.distribution.density`), transforms them through AND / OR / NOT
/ JOIN under arbitrary correlation assumptions including the "unknown
correlation" mixture (:mod:`repro.distribution.operators`), fits truncated
hyperbolas (:mod:`repro.distribution.hyperbola`), and measures/classifies
shapes — L-shape, bell, uniform (:mod:`repro.distribution.shapes`).
"""

from repro.distribution.density import SelectivityDistribution
from repro.distribution.hyperbola import HyperbolaFit, fit_truncated_hyperbola
from repro.distribution.operators import (
    and_c,
    and_unknown,
    apply_chain,
    join_c,
    join_unknown,
    negate,
    or_c,
    or_unknown,
)
from repro.distribution.shapes import ShapeMetrics, classify_shape, shape_metrics

__all__ = [
    "SelectivityDistribution",
    "HyperbolaFit",
    "fit_truncated_hyperbola",
    "and_c",
    "and_unknown",
    "apply_chain",
    "join_c",
    "join_unknown",
    "negate",
    "or_c",
    "or_unknown",
    "ShapeMetrics",
    "classify_shape",
    "shape_metrics",
]

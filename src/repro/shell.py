"""An interactive SQL shell over the dynamic optimizer.

Run with ``python -m repro`` (optionally ``--demo`` to preload the
benchmark scenarios). Statements end with ``;``. Meta commands:

* ``\\d`` — list tables; ``\\d NAME`` — describe one table
* ``\\explain <select ...>`` — show the logical plan with inferred goals
* ``\\trace on|off`` — print the dynamic execution trace after each SELECT
* ``\\cold`` — drop the buffer cache (cold-start the next statement)
* ``\\set NAME VALUE`` — bind a host variable (``:NAME`` in queries)
* ``\\metrics`` — server-wide and per-session scheduler metrics;
  ``\\metrics prom`` — the same registry in Prometheus text format
* ``\\decisions`` — server-wide decision audit metrics (per-tactic win
  rates, regret, estimate error, the live retrieval-cost L-shape)
* ``\\estimates`` — per-signature estimation quality (q-error p95/max,
  observation counts, confidence verdicts: trust vs compete)
* ``\\top`` — the live operator dashboard (per-interval throughput,
  latency, hit rates, q-error, regret sparklines + health verdict)
* ``\\health`` — the health monitor's current findings (SLO breaches,
  drift detections)
* ``\\q`` — quit

``EXPLAIN <select ...>``, ``EXPLAIN ANALYZE <select ...>``, and
``EXPLAIN COMPETE <select ...>`` are regular statements: the first prints
the static plan, the second executes the query and prints the plan
annotated with the recorded span timeline, and the third additionally
audits every optimizer decision and counterfactually replays the rejected
strategies, reporting realized regret.

The shell exists so a downstream user can poke at strategy switching
interactively — run the same parameterized query with different bindings
and watch the trace change tactics.
"""

from __future__ import annotations

import sys
from typing import Iterable, TextIO

from repro.api import Connection, connect
from repro.db.session import Database
from repro.errors import ReproError


class Shell:
    """Line-oriented REPL state.

    Statements run through the unified connection API (:func:`repro.connect`),
    i.e. the multi-query scheduler. Accepts an existing :class:`Connection`
    or, for back compatibility, a bare :class:`Database` (wrapped in its
    default connection).
    """

    def __init__(
        self,
        db: Connection | Database | None = None,
        out: TextIO = sys.stdout,
    ) -> None:
        if db is None:
            self.conn = connect(buffer_capacity=128)
        elif isinstance(db, Database):
            self.conn = db.default_connection()
        else:
            self.conn = db
        self.db = self.conn.db
        self.out = out
        self.host_vars: dict[str, object] = {}
        self.show_trace = False
        self._pending: list[str] = []
        self.done = False

    # -- output ------------------------------------------------------------

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def _print_rows(self, columns, rows, limit: int = 50) -> None:
        if not rows:
            self._print("(no rows)")
            return
        header = list(columns)
        shown = rows[:limit]
        widths = [
            max(len(str(header[i])), *(len(str(row[i])) for row in shown))
            for i in range(len(header))
        ]
        fmt = "  ".join("{:>" + str(width) + "}" for width in widths)
        self._print(fmt.format(*header))
        self._print(fmt.format(*["-" * width for width in widths]))
        for row in shown:
            self._print(fmt.format(*[str(value) for value in row]))
        if len(rows) > limit:
            self._print(f"... ({len(rows) - limit} more rows)")

    # -- command handling ----------------------------------------------------

    def feed(self, line: str) -> None:
        """Feed one input line; executes when a statement completes."""
        stripped = line.strip()
        if not self._pending and stripped.startswith("\\"):
            self._meta(stripped)
            return
        if not stripped and not self._pending:
            return
        self._pending.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self._pending).strip().rstrip(";")
            self._pending.clear()
            if statement:
                self._execute(statement)

    def run(self, lines: Iterable[str]) -> None:
        """Drive the shell from an iterable of input lines."""
        for line in lines:
            if self.done:
                return
            self.feed(line)

    def _meta(self, command: str) -> None:
        parts = command.split()
        head = parts[0]
        if head in ("\\q", "\\quit"):
            self.done = True
        elif head == "\\d":
            if len(parts) == 1:
                self._list_tables()
            else:
                self._describe(parts[1])
        elif head == "\\trace":
            self.show_trace = len(parts) > 1 and parts[1].lower() == "on"
            self._print(f"trace {'on' if self.show_trace else 'off'}")
        elif head == "\\cold":
            self.db.cold_cache()
            self._print("buffer cache dropped")
        elif head == "\\set":
            if len(parts) < 3:
                self._print("usage: \\set NAME VALUE")
                return
            name, raw = parts[1], " ".join(parts[2:])
            try:
                value: object = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw.strip("'\"")
            self.host_vars[name] = value
            self._print(f":{name} = {value!r}")
        elif head == "\\metrics":
            if len(parts) > 1 and parts[1].lower() == "prom":
                self._print(self.conn.metrics.expose_text())
            else:
                self._print(self.conn.metrics.format())
        elif head == "\\decisions":
            self._print(self.conn.metrics.decisions.format())
        elif head == "\\estimates":
            self._print(self.db.estimator.format())
        elif head == "\\top":
            monitor = self.conn.server.monitor
            if monitor is None:
                self._print("monitoring disabled (monitor_enabled=False "
                            "or monitor_interval=0)")
            else:
                # force a sample so the dashboard reflects right now
                self._print(monitor.format_top(self.conn.health()))
        elif head == "\\health":
            self._print(self.conn.health().format())
        elif head == "\\explain":
            sql = command[len("\\explain"):].strip().rstrip(";")
            try:
                self._print(self.conn.explain(sql).text)
            except ReproError as error:
                self._print(f"error: {error}")
        else:
            self._print(f"unknown meta command {head!r} (try \\d, \\trace, \\cold, "
                        "\\set, \\metrics, \\decisions, \\estimates, \\top, "
                        "\\health, \\explain, \\q)")

    def _list_tables(self) -> None:
        if not self.db.tables:
            self._print("(no tables)")
            return
        for name, table in sorted(self.db.tables.items()):
            partitioned = (
                f", partitioned {table.spec.describe()}"
                if getattr(table, "is_partitioned", False)
                else ""
            )
            self._print(
                f"{name}: {table.row_count} rows, {table.page_count} pages, "
                f"indexes: {', '.join(table.indexes) or '(none)'}"
                + partitioned
            )

    def _describe(self, name: str) -> None:
        try:
            table = self.db.table(name)
        except ReproError as error:
            self._print(f"error: {error}")
            return
        for column in table.schema.columns:
            self._print(f"  {column.name} {column.type}")
        for index in table.indexes.values():
            flags = " unique" if index.unique else ""
            self._print(f"  index {index.name} on ({', '.join(index.columns)}){flags}")

    def _execute(self, sql: str) -> None:
        try:
            result = self.conn.execute(sql, self.host_vars)
        except ReproError as error:
            self._print(f"error: {error}")
            return
        if result.kind in ("ddl", "explain"):
            self._print(result.text)
            return
        self._print_rows(result.columns, result.rows)
        for info in result.retrievals:
            self._print(
                f"-- {info.table}: goal={info.goal.value}, "
                f"cost={info.result.total_cost:.1f}, {info.result.description}"
            )
            if self.show_trace:
                self._print(info.result.trace.format())


def load_demo(db: Database) -> None:
    """Preload the benchmark scenarios for interactive exploration."""
    from repro.workloads.scenarios import (
        build_families_table,
        build_multi_index_orders,
        build_parts_table,
    )

    build_families_table(db, rows=4000)
    build_parts_table(db, rows=6000)
    build_multi_index_orders(db, rows=8000)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    argv = argv if argv is not None else sys.argv[1:]
    shell = Shell(connect(buffer_capacity=128))
    if "--demo" in argv:
        load_demo(shell.db)
        print("demo tables loaded: FAMILIES, PARTS, ORDERS (try \\d)")
    print("repro shell — statements end with ';', \\q quits, \\d lists tables")
    try:
        while not shell.done:
            prompt = "repro> " if not shell._pending else "  ...> "
            try:
                line = input(prompt)
            except EOFError:
                break
            shell.feed(line)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - direct invocation
    sys.exit(main())

"""DDL / DML statements: CREATE TABLE, CREATE INDEX, INSERT, DROP, ANALYZE.

The paper concerns retrieval, but a usable front end needs the statements
that build the data the retrievals run over. These parse from the same
token stream as SELECT and execute directly against the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.db.session import Database
from repro.errors import SqlSyntaxError
from repro.partition.partitioner import PartitionSpec


@dataclass
class CreateTable:
    """``create table T (col type, ...) [partition by ...]``.

    The optional partition clause is ``PARTITION BY HASH(col) PARTITIONS
    k`` or ``PARTITION BY RANGE(col) VALUES (b1, b2, ...)``.
    """

    table: str
    columns: tuple[tuple[str, str], ...]
    partition: PartitionSpec | None = None


@dataclass
class CreateIndex:
    """``create [unique] index IX on T (col, ...)``."""

    index: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False


@dataclass
class InsertRows:
    """``insert into T values (v, ...), (v, ...), ...``."""

    table: str
    rows: tuple[tuple[Any, ...], ...]


@dataclass
class DropTable:
    """``drop table T``."""

    table: str


@dataclass
class DropIndex:
    """``drop index IX on T``."""

    index: str
    table: str


@dataclass
class Analyze:
    """``analyze T`` — collect compile-time statistics."""

    table: str


Statement = CreateTable | CreateIndex | InsertRows | DropTable | DropIndex | Analyze

_TYPES = ("int", "float", "str")


def parse_ddl(parser) -> Statement:
    """Parse a non-SELECT statement from a ``_Parser`` positioned at its
    first keyword. Raises :class:`SqlSyntaxError` on malformed input."""
    if parser.accept_keyword("create"):
        unique = parser.accept_keyword("unique")
        if parser.accept_keyword("table"):
            if unique:
                raise SqlSyntaxError("UNIQUE applies to indexes, not tables")
            return _create_table(parser)
        if parser.accept_keyword("index"):
            return _create_index(parser, unique)
        raise SqlSyntaxError("expected TABLE or INDEX after CREATE",
                             parser.current.position)
    if parser.accept_keyword("insert"):
        parser.expect_keyword("into")
        table = parser.expect_name()
        parser.expect_keyword("values")
        rows = [_value_row(parser)]
        while parser.accept_op(","):
            rows.append(_value_row(parser))
        return InsertRows(table=table, rows=tuple(rows))
    if parser.accept_keyword("drop"):
        if parser.accept_keyword("table"):
            return DropTable(table=parser.expect_name())
        if parser.accept_keyword("index"):
            index = parser.expect_name()
            parser.expect_keyword("on")
            return DropIndex(index=index, table=parser.expect_name())
        raise SqlSyntaxError("expected TABLE or INDEX after DROP",
                             parser.current.position)
    if parser.accept_keyword("analyze"):
        return Analyze(table=parser.expect_name())
    raise SqlSyntaxError(
        f"unsupported statement start {parser.current.value!r}",
        parser.current.position,
    )


def _create_table(parser) -> CreateTable:
    table = parser.expect_name()
    parser.expect_op("(")
    columns: list[tuple[str, str]] = []
    while True:
        name = parser.expect_name()
        type_token = parser.current
        if type_token.kind != "name" or type_token.value.lower() not in _TYPES:
            raise SqlSyntaxError(
                f"expected a column type in {_TYPES}, found {type_token.value!r}",
                type_token.position,
            )
        parser.advance()
        columns.append((name, type_token.value.lower()))
        if not parser.accept_op(","):
            break
    parser.expect_op(")")
    partition = _partition_clause(parser)
    return CreateTable(table=table, columns=tuple(columns), partition=partition)


def _accept_word(parser, word: str) -> bool:
    """Accept a contextual keyword that tokenizes as a plain name
    (``partition``, ``hash``, ... are not reserved words)."""
    token = parser.current
    if token.kind == "name" and token.value.lower() == word:
        parser.advance()
        return True
    return False


def _expect_word(parser, word: str) -> None:
    if not _accept_word(parser, word):
        raise SqlSyntaxError(
            f"expected {word.upper()}, found {parser.current.value!r}",
            parser.current.position,
        )


def _partition_clause(parser) -> PartitionSpec | None:
    if not _accept_word(parser, "partition"):
        return None
    parser.expect_keyword("by")
    if _accept_word(parser, "hash"):
        parser.expect_op("(")
        column = parser.expect_name()
        parser.expect_op(")")
        _expect_word(parser, "partitions")
        token = parser.current
        if token.kind != "number" or "." in token.value:
            raise SqlSyntaxError(
                f"expected a partition count, found {token.value!r}",
                token.position,
            )
        parser.advance()
        return PartitionSpec(column=column, method="hash",
                             partitions=int(token.value))
    if _accept_word(parser, "range"):
        parser.expect_op("(")
        column = parser.expect_name()
        parser.expect_op(")")
        parser.expect_keyword("values")
        bounds = _value_row(parser)
        return PartitionSpec(column=column, method="range", bounds=bounds)
    raise SqlSyntaxError(
        f"expected HASH or RANGE after PARTITION BY, "
        f"found {parser.current.value!r}",
        parser.current.position,
    )


def _create_index(parser, unique: bool) -> CreateIndex:
    index = parser.expect_name()
    parser.expect_keyword("on")
    table = parser.expect_name()
    parser.expect_op("(")
    columns = [parser.expect_name()]
    while parser.accept_op(","):
        columns.append(parser.expect_name())
    parser.expect_op(")")
    return CreateIndex(index=index, table=table, columns=tuple(columns), unique=unique)


def _value_row(parser) -> tuple[Any, ...]:
    parser.expect_op("(")
    values: list[Any] = []
    while True:
        token = parser.current
        if token.kind == "number":
            parser.advance()
            values.append(float(token.value) if "." in token.value else int(token.value))
        elif token.kind == "string":
            parser.advance()
            values.append(token.value)
        elif token.is_keyword("null"):
            parser.advance()
            values.append(None)
        else:
            raise SqlSyntaxError(
                f"expected a literal, found {token.value!r}", token.position
            )
        if not parser.accept_op(","):
            break
    parser.expect_op(")")
    return tuple(values)


@dataclass
class DdlResult:
    """Outcome of a DDL/DML statement."""

    message: str
    rows_affected: int = 0


def execute_ddl(db: Database, statement: Statement) -> DdlResult:
    """Apply a parsed DDL/DML statement to the database."""
    if isinstance(statement, CreateTable):
        db.create_table(statement.table, list(statement.columns),
                        partition_by=statement.partition)
        if statement.partition is not None:
            return DdlResult(
                f"table {statement.table} created, "
                f"partitioned {statement.partition.describe()}"
            )
        return DdlResult(f"table {statement.table} created")
    if isinstance(statement, CreateIndex):
        table = db.table(statement.table)
        table.create_index(statement.index, list(statement.columns),
                           unique=statement.unique)
        return DdlResult(f"index {statement.index} created on {statement.table}")
    if isinstance(statement, InsertRows):
        table = db.table(statement.table)
        for row in statement.rows:
            table.insert(row)
        return DdlResult(
            f"{len(statement.rows)} row(s) inserted into {statement.table}",
            rows_affected=len(statement.rows),
        )
    if isinstance(statement, DropTable):
        db.drop_table(statement.table)
        return DdlResult(f"table {statement.table} dropped")
    if isinstance(statement, DropIndex):
        db.table(statement.table).drop_index(statement.index)
        return DdlResult(f"index {statement.index} dropped")
    if isinstance(statement, Analyze):
        stats = db.table(statement.table).analyze()
        return DdlResult(
            f"analyzed {statement.table}: {stats.row_count} rows, "
            f"{stats.page_count} pages"
        )
    raise SqlSyntaxError(f"unknown statement {statement!r}")

"""Recursive-descent SQL parser producing logical plans.

Supports the single-table subset the paper works in, plus nested
subqueries via ``IN (select ...)`` and ``EXISTS (select ...)``, and the
Rdb/VMS extensions ``LIMIT TO n ROWS`` and ``OPTIMIZE FOR FAST FIRST /
TOTAL TIME``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.goals import OptimizationGoal
from repro.errors import SqlSyntaxError
from repro.expr.ast import (
    ALWAYS_TRUE,
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    HostVar,
    InList,
    Like,
    Literal,
    Not,
    Or,
    ValueTerm,
)
from repro.expr.eval import referenced_columns, rewrite_columns
from repro.sql.plan import (
    Aggregate,
    AggregateItem,
    Distinct,
    Exists,
    ExistsSubquery,
    InSubquery,
    JoinEdge,
    JoinPlan,
    JoinSource,
    Limit,
    PlanNode,
    Project,
    Retrieve,
    Sort,
)
from repro.sql.tokenizer import Token, tokenize

AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass
class ParsedQuery:
    """A parsed statement: the plan tree plus the statement-level goal."""

    plan: PlanNode
    goal: OptimizationGoal


@dataclass
class ExplainQuery:
    """``EXPLAIN [ANALYZE | COMPETE] <select>``: render (and optionally run)
    a plan. COMPETE additionally audits the run's optimizer decisions and
    counterfactually replays the rejected strategies
    (:mod:`repro.obs.regret`). ``sql`` is the inner SELECT's source text,
    so the executor can route the execution through the shared plan cache
    under the same key ad-hoc runs of that text would use."""

    query: ParsedQuery
    analyze: bool
    compete: bool = False
    sql: str = ""


@dataclass
class PrepareStatement:
    """``PREPARE name AS <select>``: register a named prepared statement.

    ``sql`` is the inner SELECT's source text (sliced from the original
    statement), so the executor can route it through the shared plan cache
    under the same normalized key ad-hoc executions of that text would use.
    ``query`` is the already-validated parse of that text.
    """

    name: str
    sql: str
    query: ParsedQuery


@dataclass
class ExecuteStatement:
    """``EXECUTE name [(literal, ...)]``: run a prepared statement, binding
    the literals positionally to its ``?`` placeholders."""

    name: str
    params: tuple


@dataclass
class DeallocateStatement:
    """``DEALLOCATE [PREPARE] name``: drop a prepared statement."""

    name: str


def parse(sql: str) -> ParsedQuery:
    """Parse one SELECT statement."""
    parser = _Parser(tokenize(sql))
    query = parser.select_statement()
    parser.expect_end()
    return query


def parse_any(sql: str):
    """Parse any supported statement: a SELECT (returns
    :class:`ParsedQuery`), ``EXPLAIN [ANALYZE] <select>`` (returns
    :class:`ExplainQuery`), or a DDL/DML statement (returns a
    :mod:`repro.sql.ddl` statement object)."""
    parser = _Parser(tokenize(sql))
    if parser.current.is_keyword("explain"):
        parser.advance()
        analyze = parser.accept_keyword("analyze")
        compete = False if analyze else parser.accept_keyword("compete")
        start = parser.current.position
        query = parser.select_statement()
        parser.expect_end()
        return ExplainQuery(
            query=query,
            analyze=analyze,
            compete=compete,
            sql=sql[start:].strip(),
        )
    if parser.current.is_keyword("select"):
        query = parser.select_statement()
        parser.expect_end()
        return query
    if parser.current.is_keyword("prepare"):
        parser.advance()
        name = parser.expect_name()
        parser.expect_keyword("as")
        start = parser.current.position
        query = parser.select_statement()
        parser.expect_end()
        return PrepareStatement(name=name, sql=sql[start:].strip(), query=query)
    if parser.current.is_keyword("execute"):
        parser.advance()
        name = parser.expect_name()
        params: list = []
        if parser.accept_op("("):
            if not parser.accept_op(")"):
                while True:
                    params.append(parser.literal_value())
                    if not parser.accept_op(","):
                        break
                parser.expect_op(")")
        parser.expect_end()
        return ExecuteStatement(name=name, params=tuple(params))
    if parser.current.is_keyword("deallocate"):
        parser.advance()
        parser.accept_keyword("prepare")
        name = parser.expect_name()
        parser.expect_end()
        return DeallocateStatement(name=name)
    from repro.sql.ddl import parse_ddl

    statement = parse_ddl(parser)
    parser.expect_end()
    return statement


MAX_JOIN_TABLES = 4


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0
        #: alias -> table map while parsing a join query's WHERE/ORDER BY;
        #: None in single-table context (saved/restored across subqueries)
        self._join_aliases: dict[str, str] | None = None

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "end":
            self.index += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SqlSyntaxError(
                f"expected {word.upper()}, found {self.current.value!r}",
                self.current.position,
            )

    def accept_op(self, op: str) -> bool:
        if self.current.kind == "op" and self.current.value == op:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SqlSyntaxError(
                f"expected {op!r}, found {self.current.value!r}", self.current.position
            )

    def expect_name(self) -> str:
        if self.current.kind != "name":
            raise SqlSyntaxError(
                f"expected a name, found {self.current.value!r}", self.current.position
            )
        return self.advance().value

    def expect_end(self) -> None:
        if self.current.kind != "end":
            raise SqlSyntaxError(
                f"unexpected trailing input {self.current.value!r}", self.current.position
            )

    def literal_value(self):
        """A bare literal (number, string, or NULL) as a Python value."""
        token = self.current
        if token.kind == "number":
            self.advance()
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "string":
            self.advance()
            return token.value
        if token.is_keyword("null"):
            self.advance()
            return None
        raise SqlSyntaxError(
            f"expected a literal value, found {token.value!r}", token.position
        )

    # -- grammar ------------------------------------------------------------------

    def select_statement(self) -> ParsedQuery:
        saved_aliases = self._join_aliases
        try:
            return self._select_statement()
        finally:
            self._join_aliases = saved_aliases

    def _select_statement(self) -> ParsedQuery:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        star, columns, aggregates = self.select_list()
        if aggregates and columns:
            raise SqlSyntaxError(
                "mixing plain columns with aggregates requires GROUP BY, "
                "which this subset does not support"
            )
        self.expect_keyword("from")
        sources, on_edges = self.from_clause()
        join_mode = len(sources) > 1
        table = sources[0].table
        if join_mode:
            self._join_aliases = {source.alias: source.table for source in sources}
            qualifier = None
        else:
            self._join_aliases = None
            # the allowed column qualifier: the alias when given, else the
            # table name itself
            qualifier = sources[0].alias
        columns = [self._resolve_select_name(name, sources) for name in columns]
        aggregates = [
            AggregateItem(
                item.function,
                None
                if item.argument is None
                else self._resolve_select_name(item.argument, sources),
                item.alias,
            )
            for item in aggregates
        ]
        restriction: Expr = ALWAYS_TRUE
        subplans: list[PlanNode] = []
        if self.accept_keyword("where"):
            restriction = self.or_expr(qualifier, subplans)
        order_keys: list[str] = []
        order_desc: list[bool] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            while True:
                order_keys.append(self.column_name(qualifier))
                if self.accept_keyword("desc"):
                    order_desc.append(True)
                else:
                    self.accept_keyword("asc")
                    order_desc.append(False)
                if not self.accept_op(","):
                    break
        limit: int | None = None
        if self.accept_keyword("limit"):
            self.expect_keyword("to")
            if self.current.kind != "number":
                raise SqlSyntaxError("LIMIT TO expects a number", self.current.position)
            limit = int(self.advance().value)
            self.expect_keyword("rows")
        goal = OptimizationGoal.DEFAULT
        if self.accept_keyword("optimize"):
            self.expect_keyword("for")
            if self.accept_keyword("fast"):
                self.expect_keyword("first")
                goal = OptimizationGoal.FAST_FIRST
            else:
                self.expect_keyword("total")
                self.expect_keyword("time")
                goal = OptimizationGoal.TOTAL_TIME

        output: tuple[str, ...] | None
        if star:
            output = None
        else:
            needed = list(columns)
            for item in aggregates:
                if item.argument is not None and item.argument not in needed:
                    needed.append(item.argument)
            for key in order_keys:
                if key not in needed:
                    needed.append(key)
            output = tuple(needed)

        node: PlanNode
        if join_mode:
            if subplans:
                raise SqlSyntaxError("subqueries are not supported in join queries")
            locals_, where_edges = self._split_join_where(restriction, sources)
            node = JoinPlan(
                sources=tuple(sources),
                edges=tuple(on_edges) + tuple(where_edges),
                restrictions=locals_,
                output_columns=output,
            )
        else:
            node = Retrieve(
                children=tuple(subplans),
                table=table,
                restriction=restriction,
                output_columns=output,
            )
        if aggregates:
            node = Aggregate(children=(node,), items=tuple(aggregates))
        if order_keys:
            node = Sort(children=(node,), keys=tuple(order_keys), descending=tuple(order_desc))
        if distinct:
            node = Distinct(children=(node,))
        if limit is not None:
            node = Limit(children=(node,), count=limit)
        node = Project(children=(node,), columns=tuple(columns) if not star else ())
        return ParsedQuery(plan=node, goal=goal)

    # -- FROM clause / joins -------------------------------------------------

    def from_clause(self) -> tuple[list[JoinSource], list[JoinEdge]]:
        """``table [alias] ([INNER] JOIN table [alias] ON a.x = b.y [AND ...])*``"""
        sources = [self._join_source()]
        edges: list[JoinEdge] = []
        while True:
            if self.accept_keyword("inner"):
                self.expect_keyword("join")
            elif not self.accept_keyword("join"):
                break
            sources.append(self._join_source())
            self.expect_keyword("on")
            known = {source.alias for source in sources}
            while True:
                position = self.current.position
                left_alias, left_column = self._qualified_pair()
                self.expect_op("=")
                right_alias, right_column = self._qualified_pair()
                for alias in (left_alias, right_alias):
                    if alias not in known:
                        raise SqlSyntaxError(
                            f"unknown table alias {alias!r} in ON clause", position
                        )
                edges.append(
                    JoinEdge(left_alias, left_column, right_alias, right_column)
                )
                if not self.accept_keyword("and"):
                    break
        if len(sources) > MAX_JOIN_TABLES:
            raise SqlSyntaxError(
                f"at most {MAX_JOIN_TABLES} tables may be joined"
            )
        seen: set[str] = set()
        for source in sources:
            if source.alias in seen:
                raise SqlSyntaxError(f"duplicate table alias {source.alias!r}")
            seen.add(source.alias)
        return sources, edges

    #: a bare (AS-less) alias is consumed only when the token after it keeps
    #: the parse unambiguous — otherwise ``select * from T garbage`` would
    #: silently alias T instead of rejecting the trailing token
    _BARE_ALIAS_FOLLOWERS = (
        "join", "inner", "on", "where", "order", "limit", "optimize",
    )

    def _join_source(self) -> JoinSource:
        table = self.expect_name()
        if self.accept_keyword("as"):
            alias = self.expect_name()
        elif self.current.kind == "name" and any(
            self.tokens[self.index + 1].is_keyword(word)
            for word in self._BARE_ALIAS_FOLLOWERS
        ):
            alias = self.advance().value
        else:
            alias = table
        return JoinSource(table=table, alias=alias)

    def _qualified_pair(self) -> tuple[str, str]:
        first = self.expect_name()
        self.expect_op(".")
        return first, self.expect_name()

    def _resolve_select_name(self, name: str, sources: list[JoinSource]) -> str:
        """Validate a select-list/aggregate column name against the FROM
        sources: joins require alias-qualified names (kept qualified);
        single-table names are stripped to the bare column."""
        if len(sources) > 1:
            if "." not in name:
                raise SqlSyntaxError(
                    f"column {name!r} in a join query must be alias-qualified"
                )
            qualifier = name.split(".", 1)[0]
            if self._join_aliases is None or qualifier not in self._join_aliases:
                raise SqlSyntaxError(f"unknown table alias {qualifier!r}")
            return name
        if "." in name:
            qualifier, bare = name.split(".", 1)
            if qualifier != sources[0].alias:
                raise SqlSyntaxError(
                    f"qualifier {qualifier!r} does not match table "
                    f"{sources[0].alias!r}"
                )
            return bare
        return name

    def _split_join_where(
        self, restriction: Expr, sources: list[JoinSource]
    ) -> tuple[tuple[tuple[str, Expr], ...], list[JoinEdge]]:
        """Split a join query's WHERE into per-alias local restrictions
        (rewritten to bare column names) and extra equi-join edges. Any
        other cross-table term is outside the supported subset."""
        if restriction is ALWAYS_TRUE:
            return (), []
        terms = list(restriction.children) if isinstance(restriction, And) else [restriction]
        locals_: dict[str, list[Expr]] = {}
        edges: list[JoinEdge] = []
        for term in terms:
            aliases = sorted({name.split(".", 1)[0] for name in referenced_columns(term)})
            if len(aliases) <= 1:
                target = aliases[0] if aliases else sources[0].alias
                bare = rewrite_columns(term, lambda name: name.split(".", 1)[1])
                locals_.setdefault(target, []).append(bare)
            elif (
                len(aliases) == 2
                and isinstance(term, Comparison)
                and term.op == "="
                and isinstance(term.left, ColumnRef)
                and isinstance(term.right, ColumnRef)
            ):
                left_alias, left_column = term.left.name.split(".", 1)
                right_alias, right_column = term.right.name.split(".", 1)
                edges.append(JoinEdge(left_alias, left_column, right_alias, right_column))
            else:
                raise SqlSyntaxError(
                    "join WHERE clauses must be conjunctions of single-table "
                    "predicates and a.x = b.y join terms"
                )
        combined = tuple(
            (alias, exprs[0] if len(exprs) == 1 else And(tuple(exprs)))
            for alias, exprs in locals_.items()
        )
        return combined, edges

    def select_list(self) -> tuple[bool, list[str], list[AggregateItem]]:
        if self.accept_op("*"):
            return True, [], []
        columns: list[str] = []
        aggregates: list[AggregateItem] = []
        while True:
            token = self.current
            if token.kind == "keyword" and token.value in AGGREGATE_FUNCTIONS:
                self.advance()
                self.expect_op("(")
                argument: str | None
                if self.accept_op("*"):
                    if token.value != "count":
                        raise SqlSyntaxError(
                            f"{token.value}(*) is not valid", token.position
                        )
                    argument = None
                else:
                    argument = self.raw_column_name()
                self.expect_op(")")
                alias = f"{token.value}({argument or '*'})"
                if self.accept_keyword("as"):
                    alias = self.expect_name()
                aggregates.append(AggregateItem(token.value, argument, alias))
            else:
                columns.append(self.raw_column_name())
                if self.accept_keyword("as"):
                    self.expect_name()  # aliases accepted, projection keeps base name
            if not self.accept_op(","):
                return False, columns, aggregates

    def raw_column_name(self) -> str:
        """A possibly-qualified column name, qualifier preserved.

        The select list parses before FROM, so qualifiers cannot be checked
        yet; :meth:`_resolve_select_name` validates them afterwards.
        """
        first = self.expect_name()
        if self.accept_op("."):
            return f"{first}.{self.expect_name()}"
        return first

    def column_name(self, table: str | None) -> str:
        position = self.current.position
        first = self.expect_name()
        if self.accept_op("."):
            second = self.expect_name()
            if self._join_aliases is not None:
                if first not in self._join_aliases:
                    raise SqlSyntaxError(
                        f"unknown table alias {first!r}", position
                    )
                return f"{first}.{second}"
            if table is not None and first != table:
                raise SqlSyntaxError(
                    f"qualifier {first!r} does not match table {table!r}",
                    self.current.position,
                )
            return second
        if self._join_aliases is not None:
            raise SqlSyntaxError(
                f"column {first!r} in a join query must be alias-qualified",
                position,
            )
        return first

    # -- boolean expressions ------------------------------------------------------

    def or_expr(self, table: str, subplans: list[PlanNode]) -> Expr:
        terms = [self.and_expr(table, subplans)]
        while self.accept_keyword("or"):
            terms.append(self.and_expr(table, subplans))
        return terms[0] if len(terms) == 1 else Or(tuple(terms))

    def and_expr(self, table: str, subplans: list[PlanNode]) -> Expr:
        terms = [self.not_expr(table, subplans)]
        while self.accept_keyword("and"):
            terms.append(self.not_expr(table, subplans))
        return terms[0] if len(terms) == 1 else And(tuple(terms))

    def not_expr(self, table: str, subplans: list[PlanNode]) -> Expr:
        if self.accept_keyword("not"):
            return Not(self.not_expr(table, subplans))
        return self.primary(table, subplans)

    def primary(self, table: str, subplans: list[PlanNode]) -> Expr:
        if self.current.is_keyword("exists"):
            self.advance()
            self.expect_op("(")
            subquery = self.select_statement()
            self.expect_op(")")
            exists_node = Exists(children=(subquery.plan,))
            subplans.append(exists_node)
            return ExistsSubquery(plan=exists_node)
        if self.accept_op("("):
            expr = self.or_expr(table, subplans)
            self.expect_op(")")
            return expr
        return self.predicate(table, subplans)

    def predicate(self, table: str, subplans: list[PlanNode]) -> Expr:
        left = self.operand(table)
        token = self.current
        if token.is_keyword("between"):
            self.advance()
            lo = self.operand(table)
            self.expect_keyword("and")
            hi = self.operand(table)
            column = self._require_column(left, token)
            return Between(column, lo, hi)
        if token.is_keyword("not"):
            # col NOT BETWEEN / NOT IN / NOT LIKE
            self.advance()
            inner = self.predicate_tail_after_not(table, subplans, left)
            return Not(inner)
        if token.is_keyword("in"):
            self.advance()
            return self.in_tail(table, subplans, left)
        if token.is_keyword("like"):
            self.advance()
            column = self._require_column(left, token)
            if self.current.kind != "string":
                raise SqlSyntaxError("LIKE expects a string pattern", self.current.position)
            return Like(column, self.advance().value)
        if token.kind == "op" and token.value in ("=", "<>", "<", "<=", ">", ">="):
            self.advance()
            right = self.operand(table)
            return Comparison(token.value, left, right)
        raise SqlSyntaxError(
            f"expected a predicate operator, found {token.value!r}", token.position
        )

    def predicate_tail_after_not(
        self, table: str, subplans: list[PlanNode], left: ValueTerm
    ) -> Expr:
        token = self.current
        if token.is_keyword("between"):
            self.advance()
            lo = self.operand(table)
            self.expect_keyword("and")
            hi = self.operand(table)
            return Between(self._require_column(left, token), lo, hi)
        if token.is_keyword("in"):
            self.advance()
            return self.in_tail(table, subplans, left)
        if token.is_keyword("like"):
            self.advance()
            if self.current.kind != "string":
                raise SqlSyntaxError("LIKE expects a string pattern", self.current.position)
            return Like(self._require_column(left, token), self.advance().value)
        raise SqlSyntaxError(
            f"expected BETWEEN, IN, or LIKE after NOT, found {token.value!r}",
            token.position,
        )

    def in_tail(self, table: str, subplans: list[PlanNode], left: ValueTerm) -> Expr:
        column = self._require_column(left, self.current)
        self.expect_op("(")
        if self.current.is_keyword("select"):
            subquery = self.select_statement()
            self.expect_op(")")
            subplans.append(subquery.plan)
            return InSubquery(column=column, plan=subquery.plan)
        values: list[ValueTerm] = [self.operand(table)]
        while self.accept_op(","):
            values.append(self.operand(table))
        self.expect_op(")")
        return InList(column, tuple(values))

    def operand(self, table: str | None) -> ValueTerm:
        token = self.current
        if token.kind == "number":
            self.advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "hostvar":
            self.advance()
            return HostVar(token.value)
        if token.kind == "name":
            return ColumnRef(self.column_name(table))
        raise SqlSyntaxError(
            f"expected a value or column, found {token.value!r}", token.position
        )

    @staticmethod
    def _require_column(term: ValueTerm, token: Token) -> ColumnRef:
        if not isinstance(term, ColumnRef):
            raise SqlSyntaxError(
                "this predicate requires a column on the left-hand side", token.position
            )
        return term

"""Recursive-descent SQL parser producing logical plans.

Supports the single-table subset the paper works in, plus nested
subqueries via ``IN (select ...)`` and ``EXISTS (select ...)``, and the
Rdb/VMS extensions ``LIMIT TO n ROWS`` and ``OPTIMIZE FOR FAST FIRST /
TOTAL TIME``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.goals import OptimizationGoal
from repro.errors import SqlSyntaxError
from repro.expr.ast import (
    ALWAYS_TRUE,
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    HostVar,
    InList,
    Like,
    Literal,
    Not,
    Or,
    ValueTerm,
)
from repro.sql.plan import (
    Aggregate,
    AggregateItem,
    Distinct,
    Exists,
    ExistsSubquery,
    InSubquery,
    Limit,
    PlanNode,
    Project,
    Retrieve,
    Sort,
)
from repro.sql.tokenizer import Token, tokenize

AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass
class ParsedQuery:
    """A parsed statement: the plan tree plus the statement-level goal."""

    plan: PlanNode
    goal: OptimizationGoal


@dataclass
class ExplainQuery:
    """``EXPLAIN [ANALYZE | COMPETE] <select>``: render (and optionally run)
    a plan. COMPETE additionally audits the run's optimizer decisions and
    counterfactually replays the rejected strategies
    (:mod:`repro.obs.regret`). ``sql`` is the inner SELECT's source text,
    so the executor can route the execution through the shared plan cache
    under the same key ad-hoc runs of that text would use."""

    query: ParsedQuery
    analyze: bool
    compete: bool = False
    sql: str = ""


@dataclass
class PrepareStatement:
    """``PREPARE name AS <select>``: register a named prepared statement.

    ``sql`` is the inner SELECT's source text (sliced from the original
    statement), so the executor can route it through the shared plan cache
    under the same normalized key ad-hoc executions of that text would use.
    ``query`` is the already-validated parse of that text.
    """

    name: str
    sql: str
    query: ParsedQuery


@dataclass
class ExecuteStatement:
    """``EXECUTE name [(literal, ...)]``: run a prepared statement, binding
    the literals positionally to its ``?`` placeholders."""

    name: str
    params: tuple


@dataclass
class DeallocateStatement:
    """``DEALLOCATE [PREPARE] name``: drop a prepared statement."""

    name: str


def parse(sql: str) -> ParsedQuery:
    """Parse one SELECT statement."""
    parser = _Parser(tokenize(sql))
    query = parser.select_statement()
    parser.expect_end()
    return query


def parse_any(sql: str):
    """Parse any supported statement: a SELECT (returns
    :class:`ParsedQuery`), ``EXPLAIN [ANALYZE] <select>`` (returns
    :class:`ExplainQuery`), or a DDL/DML statement (returns a
    :mod:`repro.sql.ddl` statement object)."""
    parser = _Parser(tokenize(sql))
    if parser.current.is_keyword("explain"):
        parser.advance()
        analyze = parser.accept_keyword("analyze")
        compete = False if analyze else parser.accept_keyword("compete")
        start = parser.current.position
        query = parser.select_statement()
        parser.expect_end()
        return ExplainQuery(
            query=query,
            analyze=analyze,
            compete=compete,
            sql=sql[start:].strip(),
        )
    if parser.current.is_keyword("select"):
        query = parser.select_statement()
        parser.expect_end()
        return query
    if parser.current.is_keyword("prepare"):
        parser.advance()
        name = parser.expect_name()
        parser.expect_keyword("as")
        start = parser.current.position
        query = parser.select_statement()
        parser.expect_end()
        return PrepareStatement(name=name, sql=sql[start:].strip(), query=query)
    if parser.current.is_keyword("execute"):
        parser.advance()
        name = parser.expect_name()
        params: list = []
        if parser.accept_op("("):
            if not parser.accept_op(")"):
                while True:
                    params.append(parser.literal_value())
                    if not parser.accept_op(","):
                        break
                parser.expect_op(")")
        parser.expect_end()
        return ExecuteStatement(name=name, params=tuple(params))
    if parser.current.is_keyword("deallocate"):
        parser.advance()
        parser.accept_keyword("prepare")
        name = parser.expect_name()
        parser.expect_end()
        return DeallocateStatement(name=name)
    from repro.sql.ddl import parse_ddl

    statement = parse_ddl(parser)
    parser.expect_end()
    return statement


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "end":
            self.index += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SqlSyntaxError(
                f"expected {word.upper()}, found {self.current.value!r}",
                self.current.position,
            )

    def accept_op(self, op: str) -> bool:
        if self.current.kind == "op" and self.current.value == op:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SqlSyntaxError(
                f"expected {op!r}, found {self.current.value!r}", self.current.position
            )

    def expect_name(self) -> str:
        if self.current.kind != "name":
            raise SqlSyntaxError(
                f"expected a name, found {self.current.value!r}", self.current.position
            )
        return self.advance().value

    def expect_end(self) -> None:
        if self.current.kind != "end":
            raise SqlSyntaxError(
                f"unexpected trailing input {self.current.value!r}", self.current.position
            )

    def literal_value(self):
        """A bare literal (number, string, or NULL) as a Python value."""
        token = self.current
        if token.kind == "number":
            self.advance()
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "string":
            self.advance()
            return token.value
        if token.is_keyword("null"):
            self.advance()
            return None
        raise SqlSyntaxError(
            f"expected a literal value, found {token.value!r}", token.position
        )

    # -- grammar ------------------------------------------------------------------

    def select_statement(self) -> ParsedQuery:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        star, columns, aggregates = self.select_list()
        if aggregates and columns:
            raise SqlSyntaxError(
                "mixing plain columns with aggregates requires GROUP BY, "
                "which this subset does not support"
            )
        self.expect_keyword("from")
        table = self.expect_name()
        restriction: Expr = ALWAYS_TRUE
        subplans: list[PlanNode] = []
        if self.accept_keyword("where"):
            restriction = self.or_expr(table, subplans)
        order_keys: list[str] = []
        order_desc: list[bool] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            while True:
                order_keys.append(self.column_name(table))
                if self.accept_keyword("desc"):
                    order_desc.append(True)
                else:
                    self.accept_keyword("asc")
                    order_desc.append(False)
                if not self.accept_op(","):
                    break
        limit: int | None = None
        if self.accept_keyword("limit"):
            self.expect_keyword("to")
            if self.current.kind != "number":
                raise SqlSyntaxError("LIMIT TO expects a number", self.current.position)
            limit = int(self.advance().value)
            self.expect_keyword("rows")
        goal = OptimizationGoal.DEFAULT
        if self.accept_keyword("optimize"):
            self.expect_keyword("for")
            if self.accept_keyword("fast"):
                self.expect_keyword("first")
                goal = OptimizationGoal.FAST_FIRST
            else:
                self.expect_keyword("total")
                self.expect_keyword("time")
                goal = OptimizationGoal.TOTAL_TIME

        output: tuple[str, ...] | None
        if star:
            output = None
        else:
            needed = list(columns)
            for item in aggregates:
                if item.argument is not None and item.argument not in needed:
                    needed.append(item.argument)
            for key in order_keys:
                if key not in needed:
                    needed.append(key)
            output = tuple(needed)

        node: PlanNode = Retrieve(
            children=tuple(subplans),
            table=table,
            restriction=restriction,
            output_columns=output,
        )
        if aggregates:
            node = Aggregate(children=(node,), items=tuple(aggregates))
        if order_keys:
            node = Sort(children=(node,), keys=tuple(order_keys), descending=tuple(order_desc))
        if distinct:
            node = Distinct(children=(node,))
        if limit is not None:
            node = Limit(children=(node,), count=limit)
        node = Project(children=(node,), columns=tuple(columns) if not star else ())
        return ParsedQuery(plan=node, goal=goal)

    def select_list(self) -> tuple[bool, list[str], list[AggregateItem]]:
        if self.accept_op("*"):
            return True, [], []
        columns: list[str] = []
        aggregates: list[AggregateItem] = []
        while True:
            token = self.current
            if token.kind == "keyword" and token.value in AGGREGATE_FUNCTIONS:
                self.advance()
                self.expect_op("(")
                argument: str | None
                if self.accept_op("*"):
                    if token.value != "count":
                        raise SqlSyntaxError(
                            f"{token.value}(*) is not valid", token.position
                        )
                    argument = None
                else:
                    argument = self.column_name(None)
                self.expect_op(")")
                alias = f"{token.value}({argument or '*'})"
                if self.accept_keyword("as"):
                    alias = self.expect_name()
                aggregates.append(AggregateItem(token.value, argument, alias))
            else:
                columns.append(self.column_name(None))
                if self.accept_keyword("as"):
                    self.expect_name()  # aliases accepted, projection keeps base name
            if not self.accept_op(","):
                return False, columns, aggregates

    def column_name(self, table: str | None) -> str:
        first = self.expect_name()
        if self.accept_op("."):
            second = self.expect_name()
            if table is not None and first != table:
                raise SqlSyntaxError(
                    f"qualifier {first!r} does not match table {table!r}",
                    self.current.position,
                )
            return second
        return first

    # -- boolean expressions ------------------------------------------------------

    def or_expr(self, table: str, subplans: list[PlanNode]) -> Expr:
        terms = [self.and_expr(table, subplans)]
        while self.accept_keyword("or"):
            terms.append(self.and_expr(table, subplans))
        return terms[0] if len(terms) == 1 else Or(tuple(terms))

    def and_expr(self, table: str, subplans: list[PlanNode]) -> Expr:
        terms = [self.not_expr(table, subplans)]
        while self.accept_keyword("and"):
            terms.append(self.not_expr(table, subplans))
        return terms[0] if len(terms) == 1 else And(tuple(terms))

    def not_expr(self, table: str, subplans: list[PlanNode]) -> Expr:
        if self.accept_keyword("not"):
            return Not(self.not_expr(table, subplans))
        return self.primary(table, subplans)

    def primary(self, table: str, subplans: list[PlanNode]) -> Expr:
        if self.current.is_keyword("exists"):
            self.advance()
            self.expect_op("(")
            subquery = self.select_statement()
            self.expect_op(")")
            exists_node = Exists(children=(subquery.plan,))
            subplans.append(exists_node)
            return ExistsSubquery(plan=exists_node)
        if self.accept_op("("):
            expr = self.or_expr(table, subplans)
            self.expect_op(")")
            return expr
        return self.predicate(table, subplans)

    def predicate(self, table: str, subplans: list[PlanNode]) -> Expr:
        left = self.operand(table)
        token = self.current
        if token.is_keyword("between"):
            self.advance()
            lo = self.operand(table)
            self.expect_keyword("and")
            hi = self.operand(table)
            column = self._require_column(left, token)
            return Between(column, lo, hi)
        if token.is_keyword("not"):
            # col NOT BETWEEN / NOT IN / NOT LIKE
            self.advance()
            inner = self.predicate_tail_after_not(table, subplans, left)
            return Not(inner)
        if token.is_keyword("in"):
            self.advance()
            return self.in_tail(table, subplans, left)
        if token.is_keyword("like"):
            self.advance()
            column = self._require_column(left, token)
            if self.current.kind != "string":
                raise SqlSyntaxError("LIKE expects a string pattern", self.current.position)
            return Like(column, self.advance().value)
        if token.kind == "op" and token.value in ("=", "<>", "<", "<=", ">", ">="):
            self.advance()
            right = self.operand(table)
            return Comparison(token.value, left, right)
        raise SqlSyntaxError(
            f"expected a predicate operator, found {token.value!r}", token.position
        )

    def predicate_tail_after_not(
        self, table: str, subplans: list[PlanNode], left: ValueTerm
    ) -> Expr:
        token = self.current
        if token.is_keyword("between"):
            self.advance()
            lo = self.operand(table)
            self.expect_keyword("and")
            hi = self.operand(table)
            return Between(self._require_column(left, token), lo, hi)
        if token.is_keyword("in"):
            self.advance()
            return self.in_tail(table, subplans, left)
        if token.is_keyword("like"):
            self.advance()
            if self.current.kind != "string":
                raise SqlSyntaxError("LIKE expects a string pattern", self.current.position)
            return Like(self._require_column(left, token), self.advance().value)
        raise SqlSyntaxError(
            f"expected BETWEEN, IN, or LIKE after NOT, found {token.value!r}",
            token.position,
        )

    def in_tail(self, table: str, subplans: list[PlanNode], left: ValueTerm) -> Expr:
        column = self._require_column(left, self.current)
        self.expect_op("(")
        if self.current.is_keyword("select"):
            subquery = self.select_statement()
            self.expect_op(")")
            subplans.append(subquery.plan)
            return InSubquery(column=column, plan=subquery.plan)
        values: list[ValueTerm] = [self.operand(table)]
        while self.accept_op(","):
            values.append(self.operand(table))
        self.expect_op(")")
        return InList(column, tuple(values))

    def operand(self, table: str | None) -> ValueTerm:
        token = self.current
        if token.kind == "number":
            self.advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "hostvar":
            self.advance()
            return HostVar(token.value)
        if token.kind == "name":
            return ColumnRef(self.column_name(table))
        raise SqlSyntaxError(
            f"expected a value or column, found {token.value!r}", token.position
        )

    @staticmethod
    def _require_column(term: ValueTerm, token: Token) -> ColumnRef:
        if not isinstance(term, ColumnRef):
            raise SqlSyntaxError(
                "this predicate requires a column on the left-hand side", token.position
            )
        return term

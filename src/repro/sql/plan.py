"""Logical plan nodes.

Node types are the vocabulary of the Section 4 goal-inference rules:
``exists`` and ``limit`` request fast-first for the retrievals they
control; ``sort``, ``distinct``, and ``aggregate`` request total-time. The
tree satisfies :class:`repro.engine.goals.PlanNodeLike`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.expr.ast import ColumnRef, Expr


@dataclass
class PlanNode:
    """Base class: a typed node with ordered children."""

    node_type: str = field(init=False, default="plan")
    children: tuple["PlanNode", ...] = ()

    def describe(self) -> str:
        """One-line description used by EXPLAIN output."""
        return self.node_type


@dataclass
class Retrieve(PlanNode):
    """A single-table retrieval (the unit the dynamic optimizer optimizes)."""

    table: str = ""
    restriction: Expr | None = None
    #: column names the query reads from this table (None = all)
    output_columns: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        self.node_type = "retrieve"

    def describe(self) -> str:
        return f"retrieve {self.table}"


@dataclass
class Sort(PlanNode):
    """ORDER BY."""

    keys: tuple[str, ...] = ()
    descending: tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        self.node_type = "sort"

    def describe(self) -> str:
        rendered = ", ".join(
            f"{key}{' desc' if desc else ''}"
            for key, desc in zip(self.keys, self.descending)
        )
        return f"sort by {rendered}"


@dataclass
class Distinct(PlanNode):
    """SELECT DISTINCT (implemented by sorting — hence a total-time controller)."""

    def __post_init__(self) -> None:
        self.node_type = "distinct"


@dataclass
class Limit(PlanNode):
    """LIMIT TO n ROWS."""

    count: int = 0

    def __post_init__(self) -> None:
        self.node_type = "limit"

    def describe(self) -> str:
        return f"limit to {self.count} rows"


@dataclass
class Exists(PlanNode):
    """EXISTS (subquery) — wraps the subquery plan in the tree so the
    fast-first rule sees it controlling the subquery's retrievals."""

    def __post_init__(self) -> None:
        self.node_type = "exists"


@dataclass
class AggregateItem:
    """One aggregate in the select list."""

    function: str  # count | sum | avg | min | max
    argument: str | None  # column name; None for count(*)
    alias: str


@dataclass
class Aggregate(PlanNode):
    """Aggregation over the child's rows."""

    items: tuple[AggregateItem, ...] = ()

    def __post_init__(self) -> None:
        self.node_type = "aggregate"

    def describe(self) -> str:
        rendered = ", ".join(
            f"{item.function}({item.argument or '*'})" for item in self.items
        )
        return f"aggregate {rendered}"


@dataclass
class Project(PlanNode):
    """Final projection to the select-list columns."""

    columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.node_type = "project"

    def describe(self) -> str:
        return f"project {', '.join(self.columns) or '*'}"


@dataclass(frozen=True)
class JoinSource:
    """One table (with alias) participating in a join."""

    table: str
    alias: str


@dataclass(frozen=True)
class JoinEdge:
    """An inner equi-join edge ``left.column = right.column``."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def touches(self, alias: str) -> bool:
        return alias in (self.left_alias, self.right_alias)

    def describe(self) -> str:
        return (
            f"{self.left_alias}.{self.left_column}"
            f" = {self.right_alias}.{self.right_column}"
        )


@dataclass
class JoinPlan(PlanNode):
    """A 2–4 table inner equi-join.

    The join replaces :class:`Retrieve` at the bottom of the plan chain.
    The join *order* is deliberately absent: order selection is a runtime
    decision made by the join competition (paper Figure 4 lifted one level
    up, from index choice to join order).

    ``restrictions`` carries the single-alias WHERE conjuncts, rewritten to
    bare column names so the single-table engine machinery can consume them
    unchanged; ``edges`` carries the cross-alias equality conjuncts (both
    ON and WHERE contribute).
    """

    sources: tuple[JoinSource, ...] = ()
    edges: tuple[JoinEdge, ...] = ()
    #: per-alias local restrictions: (alias, expr with bare column names)
    restrictions: tuple[tuple[str, Expr], ...] = ()
    #: qualified "alias.column" names the query reads (None = all)
    output_columns: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        self.node_type = "join"

    def alias_table(self, alias: str) -> str:
        for source in self.sources:
            if source.alias == alias:
                return source.table
        raise KeyError(alias)

    def restriction_for(self, alias: str) -> Expr | None:
        for name, expr in self.restrictions:
            if name == alias:
                return expr
        return None

    def describe(self) -> str:
        tables = ", ".join(
            source.table if source.table == source.alias else f"{source.table} {source.alias}"
            for source in self.sources
        )
        edges = " and ".join(edge.describe() for edge in self.edges)
        return f"join [{tables}] on {edges}"


# -- subquery placeholders inside WHERE expressions ----------------------------


@dataclass(frozen=True)
class InSubquery(Expr):
    """``column IN (subquery)`` — resolved by the executor before retrieval."""

    column: ColumnRef
    plan: PlanNode


@dataclass(frozen=True)
class ExistsSubquery(Expr):
    """``EXISTS (subquery)`` — resolved to TRUE/FALSE by the executor."""

    plan: PlanNode


def walk(node: PlanNode):
    """Depth-first iteration over a plan tree."""
    yield node
    for child in node.children:
        yield from walk(child)


def format_plan(node: PlanNode, goals: dict[int, Any] | None = None, indent: int = 0) -> str:
    """Pretty-print a plan tree, annotating retrieves with inferred goals."""
    line = "  " * indent + node.describe()
    if goals is not None and node.node_type in ("retrieve", "join"):
        goal = goals.get(id(node))
        if goal is not None:
            line += f"   [goal: {goal.value}]"
    lines = [line]
    for child in node.children:
        lines.append(format_plan(child, goals, indent + 1))
    return "\n".join(lines)

"""SQL front end.

A subset of SQL with the paper's Rdb/VMS extensions: ``LIMIT TO n ROWS``
and ``OPTIMIZE FOR FAST FIRST | TOTAL TIME``. Queries are parsed to a
logical plan tree whose node types (`retrieve`, `sort`, `distinct`,
`aggregate`, `limit`, `exists`) feed the Section 4 goal-inference rules,
then executed over the dynamic retrieval engine.
"""

from repro.sql.executor import QueryResult, execute_sql, explain_sql
from repro.sql.parser import parse
from repro.sql.plan import PlanNode

__all__ = ["QueryResult", "execute_sql", "explain_sql", "parse", "PlanNode"]

"""Plan execution over the dynamic retrieval engine.

The parser emits a fixed chain per query block —
``Project [Limit] [Distinct] [Sort] [Aggregate] Retrieve`` — which the
executor unwraps, resolving subqueries first (each subquery is itself a
chain), inferring per-retrieval goals (Section 4), and pushing ORDER BY /
LIMIT into the retrieval when legal so the engine's fast-first machinery
actually sees the early-termination opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Mapping

from repro.competition.process import drain
from repro.db.session import Database
from repro.engine.goals import OptimizationGoal, infer_goals
from repro.engine.retrieval import RetrievalResult
from repro.errors import BindingError, RetrievalError, SqlSyntaxError
from repro.expr.ast import (
    ALWAYS_FALSE,
    ALWAYS_TRUE,
    And,
    Expr,
    InList,
    Literal,
    Not,
    Or,
)
from repro.obs.trace import Tracer
from repro.sql.binder import bind
from repro.sql.parser import parse
from repro.sql.plan import (
    Aggregate,
    Distinct,
    Exists,
    ExistsSubquery,
    InSubquery,
    JoinPlan,
    Limit,
    PlanNode,
    Project,
    Retrieve,
    Sort,
    format_plan,
)


@dataclass
class RetrievalInfo:
    """One executed retrieval: which table, which goal, and its result."""

    table: str
    goal: OptimizationGoal
    result: RetrievalResult


@dataclass
class QueryResult:
    """Rows plus everything needed to understand how they were produced."""

    columns: tuple[str, ...]
    rows: list[tuple]
    plan: PlanNode
    goals: dict[int, OptimizationGoal]
    retrievals: list[RetrievalInfo] = field(default_factory=list)

    @property
    def total_io(self) -> int:
        """Physical I/O across all retrievals of the statement."""
        return sum(info.result.execution_io for info in self.retrievals)

    @property
    def total_cost(self) -> float:
        """Total cost (I/O + CPU fractions) across all retrievals."""
        return sum(info.result.total_cost for info in self.retrievals)


@dataclass
class ExplainResult:
    """Rendered ``EXPLAIN`` output.

    For a static ``EXPLAIN`` only the plan text is present; for
    ``EXPLAIN ANALYZE`` the statement actually ran and ``text`` carries the
    plan annotated with the execution timeline, with the underlying
    :class:`QueryResult` attached. For ``EXPLAIN COMPETE`` the
    counterfactual-replay report (:class:`repro.obs.regret.CompeteReport`)
    is additionally attached as ``compete``.
    """

    text: str
    analyze: bool = False
    result: QueryResult | None = None
    compete: Any | None = None

    def __str__(self) -> str:
        return self.text

    # -- the obs.explain.Renderable protocol --------------------------------

    def to_text(self) -> str:
        """Human-readable report (identical to ``str(result)``)."""
        return self.text

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable report: plan tree, execution figures, and (for
        COMPETE) the counterfactual-replay report."""
        out: dict[str, Any] = {"text": self.text, "analyze": self.analyze}
        if self.result is not None:
            from repro.obs.explain import plan_to_dict

            out["plan"] = plan_to_dict(self.result.plan, self.result.goals)
            out["rows"] = len(self.result.rows)
            out["total_io"] = self.result.total_io
            out["total_cost"] = round(self.result.total_cost, 3)
        if self.compete is not None:
            out["compete"] = self.compete.to_dict()
        return out


def explain_kind(sql: str) -> str | None:
    """``"analyze"`` / ``"compete"`` for an executing EXPLAIN variant,
    None otherwise (including plain ``EXPLAIN``, which never runs).

    Used by the server to force a tracer (and, for COMPETE, an audit log)
    for the statement before parsing it in earnest — the sampling decision
    happens at submission time. The prefix check keeps the common case —
    every non-EXPLAIN submission — free of a full tokenize.
    """
    if not sql.lstrip()[:7].lower().startswith("explain"):
        return None
    from repro.sql.tokenizer import tokenize

    try:
        tokens = tokenize(sql)
    except Exception:
        return None
    if len(tokens) < 2 or not tokens[0].is_keyword("explain"):
        return None
    if tokens[1].is_keyword("analyze"):
        return "analyze"
    if tokens[1].is_keyword("compete"):
        return "compete"
    return None


def is_explain_analyze(sql: str) -> bool:
    """True when ``sql`` is an executing EXPLAIN (ANALYZE or COMPETE)."""
    return explain_kind(sql) is not None


def execute_sql(
    db: Database,
    sql: str,
    host_vars: Mapping[str, Any] | None = None,
    goal: OptimizationGoal = OptimizationGoal.DEFAULT,
    tracer: Tracer | None = None,
):
    """Parse, bind, infer goals, and execute one statement.

    SELECTs return a :class:`QueryResult`; ``EXPLAIN [ANALYZE]`` returns an
    :class:`ExplainResult`; DDL/DML statements return a
    :class:`repro.sql.ddl.DdlResult`.
    """
    return drain(execute_sql_steps(db, sql, host_vars, goal, tracer=tracer))


def _is_select(sql: str) -> bool:
    """Cheap prefix test routing SELECTs through the plan cache."""
    return sql.lstrip()[:6].lower() == "select"


def execute_sql_steps(
    db: Database,
    sql: str,
    host_vars: Mapping[str, Any] | None = None,
    goal: OptimizationGoal = OptimizationGoal.DEFAULT,
    retrievals: list[RetrievalInfo] | None = None,
    tracer: Tracer | None = None,
) -> Generator[RetrievalResult, None, Any]:
    """:func:`execute_sql` as a step generator (one yield per scheduling
    quantum — up to ``config.batch_size`` engine steps).

    The multi-query scheduler drives whole statements through this
    generator, interleaving their quanta over the shared buffer pool. The
    caller may pass its own ``retrievals`` list: each retrieval's
    :class:`RetrievalInfo` is appended there as soon as the retrieval takes
    its first step, so a cancelled statement still exposes the partial
    traces of whatever it ran. DDL statements execute in a single step.
    A ``tracer`` threads every retrieval of the statement (subqueries
    included) onto one query-level span timeline.

    SELECT statements route through the server-wide plan cache when it is
    enabled: a hit skips tokenize/parse/bind entirely and reuses the cached
    plan's compiled predicates; a miss parses once and populates the cache.
    """
    from repro.sql.ddl import execute_ddl
    from repro.sql.parser import (
        DeallocateStatement,
        ExecuteStatement,
        ExplainQuery,
        ParsedQuery,
        PrepareStatement,
        parse_any,
    )

    cache = db.plan_cache
    if cache.enabled and _is_select(sql):
        entry, hit = cache.entry_for(db, sql)
        if tracer is not None and tracer.enabled:
            tracer.mark("plan-cache", hit=hit, size=cache.size)
        return (
            yield from execute_prepared_steps(
                db, entry, host_vars, goal, retrievals=retrievals, tracer=tracer
            )
        )
    parsed = parse_any(sql)
    if isinstance(parsed, ExplainQuery):
        return (
            yield from _execute_explain(db, parsed, host_vars, goal, retrievals, tracer)
        )
    if isinstance(parsed, PrepareStatement):
        from repro.sql.ddl import DdlResult

        entry, _ = cache.entry_for(db, parsed.sql)
        db.prepared[parsed.name] = entry
        return DdlResult(f"statement {parsed.name} prepared")
    if isinstance(parsed, ExecuteStatement):
        entry = db.prepared.get(parsed.name)
        if entry is None:
            raise BindingError(f"unknown prepared statement {parsed.name!r}")
        entry = cache.revalidate(db, entry)
        db.prepared[parsed.name] = entry
        if len(parsed.params) != entry.param_count:
            raise BindingError(
                f"prepared statement {parsed.name!r} expects "
                f"{entry.param_count} parameter(s), got {len(parsed.params)}"
            )
        bound = dict(host_vars or {})
        bound.update(zip(entry.param_names, parsed.params))
        return (
            yield from execute_prepared_steps(
                db, entry, bound, goal, retrievals=retrievals, tracer=tracer
            )
        )
    if isinstance(parsed, DeallocateStatement):
        from repro.sql.ddl import DdlResult

        if db.prepared.pop(parsed.name, None) is None:
            raise BindingError(f"unknown prepared statement {parsed.name!r}")
        return DdlResult(f"statement {parsed.name} deallocated")
    if not isinstance(parsed, ParsedQuery):
        return execute_ddl(db, parsed)
    requested = parsed.goal if parsed.goal is not OptimizationGoal.DEFAULT else goal
    bind(db, parsed.plan)
    goals = infer_goals(parsed.plan, requested)
    if retrievals is None:
        retrievals = []
    columns, rows = yield from _execute_block(
        db, parsed.plan, dict(host_vars or {}), goals, retrievals, tracer=tracer
    )
    return QueryResult(
        columns=columns, rows=rows, plan=parsed.plan, goals=goals, retrievals=retrievals
    )


def execute_prepared_steps(
    db: Database,
    plan: Any,
    host_vars: Mapping[str, Any] | None = None,
    goal: OptimizationGoal = OptimizationGoal.DEFAULT,
    retrievals: list[RetrievalInfo] | None = None,
    tracer: Tracer | None = None,
) -> Generator[RetrievalResult, None, QueryResult]:
    """Execute a :class:`~repro.cache.plan_cache.CachedPlan` — no tokenize,
    parse, or bind on this path.

    The plan is revalidated against the current schema version first; a
    stale plan is transparently rebuilt (or fails safe with a binding error
    when its table is gone). The cached plan's predicate cache and the
    database's feedback store are threaded into every retrieval.
    """
    plan = db.plan_cache.revalidate(db, plan)
    parsed = plan.parsed
    requested = parsed.goal if parsed.goal is not OptimizationGoal.DEFAULT else goal
    goals = plan.goals_for(requested)
    if retrievals is None:
        retrievals = []
    plan.executions += 1
    columns, rows = yield from _execute_block(
        db, parsed.plan, dict(host_vars or {}), goals, retrievals,
        tracer=tracer, prepared=plan,
    )
    return QueryResult(
        columns=columns, rows=rows, plan=parsed.plan, goals=goals, retrievals=retrievals
    )


def _execute_explain(
    db: Database,
    parsed: "ExplainQuery",
    host_vars: Mapping[str, Any] | None,
    goal: OptimizationGoal,
    retrievals: list[RetrievalInfo] | None,
    tracer: Tracer | None,
) -> Generator[RetrievalResult, None, ExplainResult]:
    """Render a plan (``EXPLAIN``), run-and-render it (``EXPLAIN
    ANALYZE``), or run, audit, and counterfactually replay it
    (``EXPLAIN COMPETE``).

    The inner SELECT routes through the shared plan cache under the same
    normalized key an ad-hoc execution of that text would use, so the
    report describes the *cached* plan — spans and estimate-vs-actual
    figures attach to the same tree production hits execute.

    ANALYZE and COMPETE always execute under a live tracer — one is
    created on the spot when the caller did not force one — so the
    rendered report can lay the span timeline next to the static plan;
    COMPETE additionally guarantees a live audit log on that tracer.
    """
    from repro.obs.audit import AuditLog
    from repro.obs.explain import render_analyze

    query = parsed.query
    requested = query.goal if query.goal is not OptimizationGoal.DEFAULT else goal
    cache = db.plan_cache
    entry = None
    if cache.enabled and parsed.sql and _is_select(parsed.sql):
        entry, hit = cache.entry_for(db, parsed.sql)
        if tracer is not None and tracer.enabled:
            tracer.mark("plan-cache", hit=hit, size=cache.size)
        plan_root = entry.parsed.plan
        goals = entry.goals_for(requested)
    else:
        bind(db, query.plan)
        plan_root = query.plan
        goals = infer_goals(query.plan, requested)
    if not parsed.analyze and not parsed.compete:
        return ExplainResult(text=format_plan(plan_root, goals), analyze=False)
    if tracer is None or not tracer.enabled:
        tracer = Tracer("explain-compete" if parsed.compete else "explain-analyze")
    if parsed.compete and not tracer.audit.enabled:
        tracer.audit = AuditLog()
    if retrievals is None:
        retrievals = []
    if entry is not None:
        entry.executions += 1
    columns, rows = yield from _execute_block(
        db, plan_root, dict(host_vars or {}), goals, retrievals,
        tracer=tracer, prepared=entry,
    )
    tracer.finish(rows=len(rows))
    text = render_analyze(plan_root, goals, retrievals, tracer, len(rows))
    result = QueryResult(
        columns=columns, rows=rows, plan=plan_root, goals=goals, retrievals=retrievals
    )
    compete_report = None
    if parsed.compete:
        from repro.obs.regret import run_compete

        compete_report = run_compete(db, tracer.audit)
        text += "\n\n" + compete_report.format()
    return ExplainResult(
        text=text, analyze=True, result=result, compete=compete_report
    )


def explain_sql(db: Database, sql: str) -> str:
    """Render the logical plan with inferred per-retrieval goals."""
    parsed = parse(sql)
    bind(db, parsed.plan)
    goals = infer_goals(parsed.plan, parsed.goal)
    return format_plan(parsed.plan, goals)


# -- chain unwrapping -----------------------------------------------------------


@dataclass
class _Chain:
    project: Project
    limit: Limit | None
    distinct: Distinct | None
    sort: Sort | None
    aggregate: Aggregate | None
    retrieve: "Retrieve | JoinPlan"


def _unwrap(root: PlanNode) -> _Chain:
    if not isinstance(root, Project):
        raise SqlSyntaxError(f"expected a Project root, found {root.node_type}")
    project = root
    node = project.children[0]
    limit = distinct = sort = aggregate = None
    if isinstance(node, Limit):
        limit, node = node, node.children[0]
    if isinstance(node, Distinct):
        distinct, node = node, node.children[0]
    if isinstance(node, Sort):
        sort, node = node, node.children[0]
    if isinstance(node, Aggregate):
        aggregate, node = node, node.children[0]
    if not isinstance(node, (Retrieve, JoinPlan)):
        raise SqlSyntaxError(f"malformed plan chain: found {node.node_type}")
    return _Chain(project, limit, distinct, sort, aggregate, node)


def _tracked(
    gen: Generator[RetrievalResult, None, RetrievalResult],
    retrievals: list[RetrievalInfo],
    table_name: str,
    goal: OptimizationGoal,
) -> Generator[RetrievalResult, None, RetrievalResult]:
    """Drive one retrieval's step generator, registering it as in-flight.

    The engine yields (and finally returns) the *same* live
    :class:`~repro.engine.retrieval.RetrievalResult` object, so appending
    the :class:`RetrievalInfo` at the first step makes partial traces of a
    later-cancelled retrieval visible to the server's metrics. The
    ``finally`` close propagates cancellation into the engine, which
    abandons its scans and releases temp structures.
    """
    registered = False
    try:
        while True:
            try:
                partial = next(gen)
            except StopIteration as stop:
                if not registered:
                    retrievals.append(RetrievalInfo(table_name, goal, stop.value))
                return stop.value
            if not registered:
                retrievals.append(RetrievalInfo(table_name, goal, partial))
                registered = True
            yield partial
    finally:
        gen.close()


def _execute_block(
    db: Database,
    root: PlanNode,
    host_vars: dict[str, Any],
    goals: dict[int, OptimizationGoal],
    retrievals: list[RetrievalInfo],
    forced_limit: int | None = None,
    tracer: Tracer | None = None,
    prepared: Any = None,
) -> Generator[RetrievalResult, None, tuple[tuple[str, ...], list[tuple]]]:
    chain = _unwrap(root)
    if isinstance(chain.retrieve, JoinPlan):
        schema, rows = yield from _execute_join_retrieve(
            db, chain.retrieve, host_vars, goals, retrievals, tracer
        )
        # a join delivers in driving-order; every requested sort runs here
        if chain.sort is not None:
            rows = _sort_rows(rows, schema, chain.sort)
    else:
        table = db.table(chain.retrieve.table)
        schema = table.schema
        restriction = yield from _resolve_subqueries(
            db, chain.retrieve.restriction or ALWAYS_TRUE, host_vars, goals, retrievals,
            tracer, prepared=prepared,
        )

        goal = goals.get(id(chain.retrieve), OptimizationGoal.DEFAULT)
        order_keys = chain.sort.keys if chain.sort is not None else ()
        ascending_only = chain.sort is None or not any(chain.sort.descending)

        # LIMIT pushes into the retrieval only when no operation between them
        # needs the full row set
        push_limit: int | None = None
        if chain.limit is not None and chain.distinct is None and chain.aggregate is None:
            if ascending_only:
                push_limit = chain.limit.count
        if forced_limit is not None and chain.limit is None and (
            chain.distinct is None and chain.aggregate is None and chain.sort is None
        ):
            push_limit = forced_limit

        if tracer is not None and tracer.audit.enabled:
            # the statement-level decision: which optimization goal this
            # retrieval runs under, and whether LIMIT/ORDER BY pushed down
            from repro.obs.audit import DecisionKind

            tracer.audit.decision(
                DecisionKind.GOAL_INFERENCE,
                chosen=goal.value,
                table=chain.retrieve.table,
                order_by=bool(order_keys),
                pushed_limit=push_limit,
            )

        result = yield from _tracked(
            table.select_steps(
                where=restriction,
                host_vars=host_vars,
                columns=chain.retrieve.output_columns,
                order_by=order_keys if ascending_only else (),
                limit=push_limit,
                optimize_for=goal,
                tracer=tracer,
                predicate_cache=prepared.predicates if prepared is not None else None,
                feedback=db.feedback if db.feedback.enabled else None,
                estimator=db.estimator if db.estimator.enabled else None,
            ),
            retrievals,
            chain.retrieve.table,
            goal,
        )
        rows = list(result.rows)

        if chain.sort is not None and not ascending_only:
            rows = _sort_rows(rows, schema, chain.sort)

    if chain.aggregate is not None:
        columns, rows = _aggregate(rows, schema, chain.aggregate)
    else:
        columns, rows = _project(rows, schema, chain.project)

    if chain.distinct is not None:
        seen: set[tuple] = set()
        unique: list[tuple] = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        rows = unique

    limit_count = chain.limit.count if chain.limit is not None else forced_limit
    if limit_count is not None and len(rows) > limit_count:
        rows = rows[:limit_count]
    return columns, rows


def _execute_join_retrieve(
    db: Database,
    node: JoinPlan,
    host_vars: dict[str, Any],
    goals: dict[int, OptimizationGoal],
    retrievals: list[RetrievalInfo],
    tracer: Tracer | None,
) -> Generator[RetrievalResult, None, tuple[Any, list[tuple]]]:
    """Run one 2–4 table join through the join-order competition.

    Returns the combined-row :class:`~repro.engine.join.JoinSchema` (the
    schema-like the shared sort/aggregate/project tail consumes) and the
    joined rows in canonical source order.
    """
    from repro.engine.join import (
        JoinSchema,
        JoinTableHandle,
        join_display_name,
        run_join_steps,
    )

    handles = {}
    for source in node.sources:
        table = db.table(source.table)
        if not hasattr(table, "heap"):
            # partitioned tables have no single heap/pool to race join
            # orders over; scatter-aware joins are a follow-on
            raise RetrievalError(
                f"table {table.name!r} is partitioned; joins over "
                f"partitioned tables are not supported yet"
            )
        handles[source.alias] = JoinTableHandle(
            name=table.name,
            heap=table.heap,
            schema=table.schema,
            indexes=dict(table.indexes),
            buffer_pool=table.buffer_pool,
            stats=table.stats,
        )
    goal = goals.get(id(node), OptimizationGoal.DEFAULT)
    if goal is OptimizationGoal.DEFAULT:
        goal = OptimizationGoal.TOTAL_TIME
    display = join_display_name(node)

    if tracer is not None and tracer.audit.enabled:
        from repro.obs.audit import DecisionKind

        tracer.audit.decision(
            DecisionKind.GOAL_INFERENCE,
            chosen=goal.value,
            table=display,
            tables=len(node.sources),
        )

    result = yield from _tracked(
        run_join_steps(
            node,
            handles,
            host_vars,
            goal,
            db.config,
            tracer=tracer,
            feedback=db.feedback if db.feedback.enabled else None,
            estimator=db.estimator if db.estimator.enabled else None,
        ),
        retrievals,
        display,
        goal,
    )
    return JoinSchema(node, handles), list(result.rows)


def _sort_rows(rows: list[tuple], schema: Any, sort: Sort) -> list[tuple]:
    positions = [schema.index_of(key) for key in sort.keys]
    # stable multi-key sort with mixed directions: sort by keys right-to-left
    for position, descending in reversed(list(zip(positions, sort.descending))):
        rows = sorted(rows, key=lambda row: row[position], reverse=descending)
    return rows


def _project(
    rows: list[tuple], schema: Any, project: Project
) -> tuple[tuple[str, ...], list[tuple]]:
    if not project.columns:
        return schema.names, rows
    positions = [schema.index_of(name) for name in project.columns]
    projected = [tuple(row[position] for position in positions) for row in rows]
    return tuple(project.columns), projected


def _aggregate(
    rows: list[tuple], schema: Any, aggregate: Aggregate
) -> tuple[tuple[str, ...], list[tuple]]:
    values: list[Any] = []
    names: list[str] = []
    for item in aggregate.items:
        names.append(item.alias)
        if item.function == "count" and item.argument is None:
            values.append(len(rows))
            continue
        position = schema.index_of(item.argument or "")
        column = [row[position] for row in rows if row[position] is not None]
        if item.function == "count":
            values.append(len(column))
        elif not column:
            values.append(None)
        elif item.function == "sum":
            values.append(sum(column))
        elif item.function == "avg":
            values.append(sum(column) / len(column))
        elif item.function == "min":
            values.append(min(column))
        elif item.function == "max":
            values.append(max(column))
    return tuple(names), [tuple(values)]


# -- subquery resolution ------------------------------------------------------------


def _resolve_subqueries(
    db: Database,
    expr: Expr,
    host_vars: dict[str, Any],
    goals: dict[int, OptimizationGoal],
    retrievals: list[RetrievalInfo],
    tracer: Tracer | None = None,
    prepared: Any = None,
) -> Generator[RetrievalResult, None, Expr]:
    if isinstance(expr, InSubquery):
        _, rows = yield from _execute_block(
            db, expr.plan, host_vars, goals, retrievals, tracer=tracer,
            prepared=prepared,
        )
        values = sorted({row[0] for row in rows if row and row[0] is not None})
        if not values:
            return ALWAYS_FALSE
        return InList(expr.column, tuple(Literal(value) for value in values))
    if isinstance(expr, ExistsSubquery):
        subquery_root = expr.plan.children[0] if isinstance(expr.plan, Exists) else expr.plan
        _, rows = yield from _execute_block(
            db, subquery_root, host_vars, goals, retrievals, forced_limit=1,
            tracer=tracer, prepared=prepared,
        )
        return ALWAYS_TRUE if rows else ALWAYS_FALSE
    # rebuild composites only when a child actually resolved to something
    # new: keeping the original object preserves expression identity, which
    # the per-plan predicate/normalization memos key on across executions
    if isinstance(expr, And):
        children = []
        for child in expr.children:
            children.append(
                (yield from _resolve_subqueries(
                    db, child, host_vars, goals, retrievals, tracer, prepared
                ))
            )
        if all(new is old for new, old in zip(children, expr.children)):
            return expr
        return And(tuple(children))
    if isinstance(expr, Or):
        children = []
        for child in expr.children:
            children.append(
                (yield from _resolve_subqueries(
                    db, child, host_vars, goals, retrievals, tracer, prepared
                ))
            )
        if all(new is old for new, old in zip(children, expr.children)):
            return expr
        return Or(tuple(children))
    if isinstance(expr, Not):
        child = yield from _resolve_subqueries(
            db, expr.child, host_vars, goals, retrievals, tracer, prepared
        )
        return expr if child is expr.child else Not(child)
    return expr

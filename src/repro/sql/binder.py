"""Name resolution: validate a plan tree against the catalog."""

from __future__ import annotations

from repro.db.session import Database
from repro.db.table import Table
from repro.errors import BindingError
from repro.expr.eval import referenced_columns
from repro.sql.plan import PlanNode, Retrieve, Sort, walk


def bind(db: Database, root: PlanNode) -> dict[int, Table]:
    """Resolve every retrieve node's table and check its column references.

    Returns ``{id(retrieve_node): Table}``; raises :class:`BindingError` on
    unknown tables or columns.
    """
    tables: dict[int, Table] = {}
    for node in walk(root):
        if isinstance(node, Retrieve):
            if node.table not in db.tables:
                raise BindingError(node.table, "table")
            table = db.table(node.table)
            tables[id(node)] = table
            names: set[str] = set()
            if node.restriction is not None:
                names |= set(referenced_columns(node.restriction))
            if node.output_columns is not None:
                names |= set(node.output_columns)
            for name in sorted(names):
                if name not in table.schema:
                    raise BindingError(name, f"column (table {node.table})")
        elif isinstance(node, Sort):
            # sort keys are validated against the child retrieve when the
            # chain is executed; nothing to do here
            continue
    return tables

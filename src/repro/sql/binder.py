"""Name resolution: validate a plan tree against the catalog."""

from __future__ import annotations

from repro.db.session import Database
from repro.db.table import Table
from repro.errors import BindingError
from repro.expr.eval import referenced_columns
from repro.sql.plan import JoinPlan, PlanNode, Retrieve, Sort, walk


def bind(db: Database, root: PlanNode) -> dict[int, Table]:
    """Resolve every retrieve node's table and check its column references.

    Returns ``{id(retrieve_node): Table}``; raises :class:`BindingError` on
    unknown tables or columns.
    """
    tables: dict[int, Table] = {}
    for node in walk(root):
        if isinstance(node, JoinPlan):
            _bind_join(db, node)
        elif isinstance(node, Retrieve):
            if node.table not in db.tables:
                raise BindingError(node.table, "table")
            table = db.table(node.table)
            tables[id(node)] = table
            names: set[str] = set()
            if node.restriction is not None:
                names |= set(referenced_columns(node.restriction))
            if node.output_columns is not None:
                names |= set(node.output_columns)
            for name in sorted(names):
                if name not in table.schema:
                    raise BindingError(name, f"column (table {node.table})")
        elif isinstance(node, Sort):
            # sort keys are validated against the child retrieve when the
            # chain is executed; nothing to do here
            continue
    return tables


def _bind_join(db: Database, node: JoinPlan) -> None:
    """Validate a join plan: every source table exists, every referenced
    column exists in its alias's table, and the join graph is connected."""
    schemas = {}
    for source in node.sources:
        if source.table not in db.tables:
            raise BindingError(source.table, "table")
        schemas[source.alias] = db.table(source.table).schema

    def check(alias: str, column: str) -> None:
        schema = schemas.get(alias)
        if schema is None:
            raise BindingError(alias, "table alias")
        if column not in schema:
            raise BindingError(column, f"column (alias {alias})")

    for edge in node.edges:
        check(edge.left_alias, edge.left_column)
        check(edge.right_alias, edge.right_column)
    for alias, expr in node.restrictions:
        for column in sorted(referenced_columns(expr)):
            check(alias, column)
    if node.output_columns is not None:
        for name in node.output_columns:
            alias, column = name.split(".", 1)
            check(alias, column)
    # connectivity: every source must be reachable through join edges,
    # otherwise some left-deep order would need a cross product
    if len(node.sources) > 1:
        reached = {node.sources[0].alias}
        frontier = True
        while frontier:
            frontier = False
            for edge in node.edges:
                if edge.left_alias in reached and edge.right_alias not in reached:
                    reached.add(edge.right_alias)
                    frontier = True
                elif edge.right_alias in reached and edge.left_alias not in reached:
                    reached.add(edge.left_alias)
                    frontier = True
        missing = {source.alias for source in node.sources} - reached
        if missing:
            raise BindingError(
                ", ".join(sorted(missing)), "join graph connection for alias"
            )

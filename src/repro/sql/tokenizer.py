"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SqlSyntaxError

KEYWORDS = frozenset(
    """
    select distinct from where and or not between in exists like
    join inner
    order by asc desc limit to rows optimize for fast first total time
    count sum avg min max as is null
    create table index unique on insert into values drop analyze explain
    prepare execute deallocate compete
    """.split()
)

#: multi-character operators first so '<=' wins over '<'
OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", ".")


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # keyword | name | number | string | op | hostvar | end
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Case-insensitive keyword test."""
        return self.kind == "keyword" and self.value == word


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens; raises :class:`SqlSyntaxError`."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    index = 0
    length = len(text)
    placeholders = 0
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "?":
            # positional placeholder: the Nth '?' becomes host variable "?N".
            # ':' host variables require an alphanumeric name, so the
            # generated names can never collide with user-written ones.
            placeholders += 1
            yield Token("hostvar", f"?{placeholders}", index)
            index += 1
            continue
        if char == "-" and text[index : index + 2] == "--":
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if char == ":":
            start = index + 1
            end = start
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end == start:
                raise SqlSyntaxError("':' must be followed by a host variable name", index)
            yield Token("hostvar", text[start:end], index)
            index = end
            continue
        if char == "'":
            end = index + 1
            chunks: list[str] = []
            while True:
                if end >= length:
                    raise SqlSyntaxError("unterminated string literal", index)
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        chunks.append("'")
                        end += 2
                        continue
                    break
                chunks.append(text[end])
                end += 1
            yield Token("string", "".join(chunks), index)
            index = end + 1
            continue
        # note: str.isdigit() accepts non-ASCII digits like '²' that int()
        # rejects, so number scanning is restricted to ASCII explicitly
        ascii_digits = "0123456789"
        if char in ascii_digits or (
            char == "-" and index + 1 < length and text[index + 1] in ascii_digits
        ):
            end = index + 1
            seen_dot = False
            while end < length and (
                text[end] in ascii_digits or (text[end] == "." and not seen_dot)
            ):
                if text[end] == ".":
                    # "1." followed by a non-digit is a name boundary, not a float
                    if end + 1 >= length or text[end + 1] not in ascii_digits:
                        break
                    seen_dot = True
                end += 1
            yield Token("number", text[index:end], index)
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                yield Token("keyword", lowered, index)
            else:
                yield Token("name", word, index)
            index = end
            continue
        for operator in OPERATORS:
            if text.startswith(operator, index):
                yield Token("op", "<>" if operator == "!=" else operator, index)
                index += len(operator)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {char!r}", index)
    yield Token("end", "", length)

"""Row-to-partition placement and partition pruning.

A :class:`PartitionSpec` is the catalog's description of how a table is
split (``PARTITION BY HASH(col) PARTITIONS k`` or ``PARTITION BY
RANGE(col) VALUES (b1, b2, ...)``); a :class:`Partitioner` turns it into
two operations:

* :meth:`Partitioner.partition_of` — which partition stores a row, and
* :meth:`Partitioner.candidate_partitions` — which partitions a
  restriction can possibly touch, using the same sargable-range
  extraction (:mod:`repro.expr.ranges`) the initial stage uses for index
  selection, so pruning sees exactly the bound-host-variable ranges the
  dynamic optimizer sees.

Hashing must be stable across processes (Python's ``str`` hash is
per-process randomized), so :func:`stable_hash` is CRC-32 based.
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import CatalogError
from repro.expr.ast import ColumnRef, Expr, InList
from repro.expr.normalize import conjunction_terms, normalize
from repro.expr.ranges import _constant_of, extract_index_restriction


def partition_name(table: str, index: int) -> str:
    """The reserved child-table name of one partition (``T#p3``)."""
    return f"{table}#p{index}"


def stable_hash(value: Any) -> int:
    """A process-stable hash for partition placement.

    Integers map to themselves (so ``HASH(ID) PARTITIONS k`` over a dense
    key space is perfectly balanced and human-predictable: ``ID % k``);
    strings and floats go through CRC-32; ``None`` pins to 0.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        return zlib.crc32(repr(value).encode("utf-8"))
    return zlib.crc32(repr(value).encode("utf-8"))


@dataclass(frozen=True)
class PartitionSpec:
    """Catalog description of a table's partitioning.

    ``method`` is ``"hash"`` or ``"range"``. For range partitioning,
    ``bounds`` holds the ascending upper split points: partition ``i``
    stores ``bounds[i-1] <= value < bounds[i]`` with open ends below the
    first and at/above the last bound (``len(bounds) + 1`` partitions).
    """

    column: str
    method: str = "hash"
    partitions: int = 2
    bounds: tuple = ()

    def __post_init__(self) -> None:
        if self.method not in ("hash", "range"):
            raise CatalogError(f"unknown partition method {self.method!r}")
        if self.method == "range":
            bounds = tuple(self.bounds)
            if not bounds:
                raise CatalogError("range partitioning needs at least one bound")
            if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                raise CatalogError(f"range bounds must strictly ascend: {bounds!r}")
            object.__setattr__(self, "bounds", bounds)
            object.__setattr__(self, "partitions", len(bounds) + 1)
        elif self.partitions < 2:
            raise CatalogError("hash partitioning needs at least 2 partitions")

    def describe(self) -> str:
        if self.method == "hash":
            return f"hash({self.column}) x{self.partitions}"
        return f"range({self.column}) x{self.partitions}"


class Partitioner:
    """Maps rows and restrictions to partitions for one spec."""

    def __init__(self, spec: PartitionSpec, column_position: int) -> None:
        self.spec = spec
        self.position = column_position

    @property
    def partitions(self) -> int:
        return self.spec.partitions

    def partition_of(self, value: Any) -> int:
        raise NotImplementedError

    def partition_of_row(self, row: Sequence[Any]) -> int:
        """Which partition stores a (schema-validated) row."""
        return self.partition_of(row[self.position])

    # -- pruning -------------------------------------------------------------

    def candidate_partitions(
        self, restriction: Expr, host_vars: Mapping[str, Any]
    ) -> tuple[int, ...]:
        """The partitions the restriction can possibly touch, in order.

        Pruning is best-effort and conservative: anything not provably
        confined to a subset returns every partition. Runs at start-
        retrieval time, after host variables are bound, exactly like the
        engine's own range extraction.
        """
        every = tuple(range(self.partitions))
        try:
            terms = conjunction_terms(normalize(restriction))
        except Exception:
            return every
        in_list = self._in_list_candidates(terms, host_vars)
        if in_list is not None:
            return in_list
        restriction_on_column = extract_index_restriction(
            terms, (self.spec.column,), host_vars
        )
        key_range = restriction_on_column.key_range
        if key_range.is_empty_syntactically:
            return ()
        lo = key_range.lo[0] if key_range.lo else None
        hi = key_range.hi[0] if key_range.hi else None
        try:
            return self._range_candidates(
                lo, hi, key_range.lo_inclusive, key_range.hi_inclusive
            )
        except TypeError:
            # bound/value type mismatch (e.g. str probe against int
            # bounds) — cannot prove confinement, scan everything
            return every

    def _in_list_candidates(
        self, terms: Sequence[Expr], host_vars: Mapping[str, Any]
    ) -> tuple[int, ...] | None:
        """Pruning for ``col IN (...)`` with all-constant values."""
        for term in terms:
            if not isinstance(term, InList):
                continue
            if not isinstance(term.column, ColumnRef):
                continue
            if term.column.name != self.spec.column:
                continue
            targets: set[int] = set()
            for value_term in term.values:
                known, value = _constant_of(value_term, host_vars)
                if not known:
                    return None
                try:
                    targets.add(self.partition_of(value))
                except TypeError:
                    return None
            return tuple(sorted(targets))
        return None

    def _range_candidates(
        self, lo: Any, hi: Any, lo_inclusive: bool, hi_inclusive: bool
    ) -> tuple[int, ...]:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """``partition = stable_hash(value) % k``; prunes equality points only."""

    def partition_of(self, value: Any) -> int:
        return stable_hash(value) % self.partitions

    def _range_candidates(
        self, lo: Any, hi: Any, lo_inclusive: bool, hi_inclusive: bool
    ) -> tuple[int, ...]:
        if lo is not None and lo == hi and lo_inclusive and hi_inclusive:
            return (self.partition_of(lo),)
        # a hash scatters ranges across every partition
        return tuple(range(self.partitions))


class RangePartitioner(Partitioner):
    """Split-point placement; prunes any sargable range to a bound span."""

    def partition_of(self, value: Any) -> int:
        if value is None:
            return 0
        try:
            return bisect.bisect_right(self.spec.bounds, value)
        except TypeError:
            # un-comparable value (mixed types) — park it in the last
            # partition so candidate_partitions' conservative fallback
            # (scan everything) still covers it
            return self.partitions - 1

    def _range_candidates(
        self, lo: Any, hi: Any, lo_inclusive: bool, hi_inclusive: bool
    ) -> tuple[int, ...]:
        first = 0 if lo is None else bisect.bisect_right(self.spec.bounds, lo)
        if hi is None:
            last = self.partitions - 1
        elif hi_inclusive:
            last = bisect.bisect_right(self.spec.bounds, hi)
        else:
            last = bisect.bisect_left(self.spec.bounds, hi)
        last = min(last, self.partitions - 1)
        if last < first:
            return ()
        return tuple(range(first, last + 1))


def make_partitioner(spec: PartitionSpec, column_position: int) -> Partitioner:
    """Build the right :class:`Partitioner` for a spec."""
    if spec.method == "hash":
        return HashPartitioner(spec, column_position)
    return RangePartitioner(spec, column_position)

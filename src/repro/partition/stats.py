"""Server-wide scatter-gather observability aggregates.

One :class:`PartitionStats` lives on each :class:`~repro.db.session
.Database` and is wired onto the server's
:class:`~repro.server.metrics.MetricsRegistry` (``\\metrics`` and the
Prometheus exporter). The coordinator records one observation per
scatter, after the gather — all recording happens on the scheduler
thread, so no locking is needed even when partition fetches ran on
worker threads.

``merge_rows`` reconciles exactly with retrieval row counts: it is
incremented by the number of rows the merge *delivered* (post global
LIMIT), i.e. ``len(result.rows)`` of every partitioned retrieval.
"""

from __future__ import annotations

from repro.obs.hist import LogHistogram


class PartitionStats:
    """Counters and histograms for partitioned retrievals."""

    def __init__(self) -> None:
        #: scatter-gather retrievals executed
        self.scatters = 0
        #: rows delivered by gather merges (== sum of partitioned
        #: retrievals' row counts, the reconciliation invariant)
        self.merge_rows = 0
        #: per-partition fetches executed / pruned away before running
        self.partitions_fetched = 0
        self.partitions_pruned = 0
        #: ordered k-way merges vs bag unions
        self.ordered_merges = 0
        #: rows delivered per partition fetch
        self.fetch_rows_hist = LogHistogram("partition_fetch_rows")
        #: cost (page-I/O units) per partition fetch
        self.fetch_cost_hist = LogHistogram("partition_fetch_cost")
        #: utilization accounting: busy cost summed over fetches vs the
        #: capacity of the worker pool over each scatter's critical path
        self.busy_cost = 0.0
        self.capacity_cost = 0.0

    def record_scatter(
        self,
        fetch_rows: list[int],
        fetch_costs: list[float],
        merged_rows: int,
        pruned: int,
        workers: int,
        critical_path_cost: float,
        ordered: bool,
    ) -> None:
        """Fold one completed scatter-gather retrieval in."""
        self.scatters += 1
        self.merge_rows += merged_rows
        self.partitions_fetched += len(fetch_rows)
        self.partitions_pruned += pruned
        if ordered:
            self.ordered_merges += 1
        for rows in fetch_rows:
            self.fetch_rows_hist.record(float(rows))
        for cost in fetch_costs:
            self.fetch_cost_hist.record(cost)
        self.busy_cost += sum(fetch_costs)
        self.capacity_cost += max(1, workers) * critical_path_cost

    @property
    def worker_utilization(self) -> float:
        """Busy fraction of the worker pool across all scatters (1.0 =
        every worker busy for every scatter's whole critical path)."""
        if self.capacity_cost <= 0:
            return 0.0
        return min(1.0, self.busy_cost / self.capacity_cost)

    def format(self) -> str:
        """One ``\\metrics`` line."""
        return (
            f"partitions: {self.scatters} scatters, "
            f"{self.partitions_fetched} fetched / {self.partitions_pruned} pruned, "
            f"{self.merge_rows} merged rows ({self.ordered_merges} ordered), "
            f"utilization {self.worker_utilization:.0%}"
        )

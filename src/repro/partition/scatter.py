"""The scatter-gather coordinator: Figure 4 generalized to N workers.

One retrieval against a partitioned table becomes one independent
retrieval per (un-pruned) partition — each running the complete dynamic
engine of :mod:`repro.engine.retrieval`, with its own initial stage,
competition tactics, and two-stage switch rule over that partition's
private buffer pool — plus this coordinator, which fans the fetches out,
gathers their results, and merges.

The coordinator is itself a step generator, so it plugs into the
cooperative scheduler exactly like a single-table retrieval:

* ``partition_workers <= 1`` runs the partition fetches serially on the
  scheduler thread, yielding between engine quanta. No worker threads
  exist, every step is deterministic, and the decision sequence of every
  partition fetch is identical to what the parallel mode produces.
* ``partition_workers > 1`` submits each fetch to the database's shared
  :class:`~concurrent.futures.ThreadPoolExecutor` and polls, yielding to
  the scheduler between polls. Workers serialize per partition (one
  lock per partition), and every fetch runs untraced with predicate
  caching disabled, so shared mutable state never crosses threads; the
  coordinator applies traces, audit records, and metrics in partition
  order after the gather. Selectivity feedback and the estimator cross
  the thread boundary as :class:`PartitionFeedbackView` /
  :class:`PartitionEstimatorView`: frozen snapshots of the parent
  table's learned corrections in, buffered observations out, replayed
  into the parent stores post-gather.

Cancellation (the scheduler closing this generator → ``GeneratorExit``)
propagates to in-flight workers via an abort event checked once per
engine quantum; each worker closes its partition's generator, which
abandons its scans and releases its pins and temp structures — the same
``_on_abandon`` discipline joins use. Costs sunk in completed and
aborted fetches are folded into the live result before re-raising, so
cancelled scatters account the work they actually did.

Accounting invariant: the merged result's ``estimation_cost``,
``execution_cost``, and ``execution_io`` are exactly the sums of the
per-partition values — identical at every worker count, byte-for-byte
with the serial run.
"""

from __future__ import annotations

import threading
from concurrent import futures as _futures
from dataclasses import dataclass, field, fields, replace
from typing import Any, Generator

from repro.cache.feedback import predicate_signature
from repro.engine.goals import OptimizationGoal
from repro.engine.metrics import EventKind, RetrievalTrace
from repro.engine.retrieval import RetrievalRequest, RetrievalResult
from repro.estimate import ConfidenceVerdict
from repro.obs.audit import DecisionKind
from repro.obs.trace import Tracer
from repro.partition.merge import bag_union, merge_sorted_runs

#: how long one scheduler quantum of the coordinator blocks waiting for
#: worker futures before yielding back to the scheduler
_POLL_SECONDS = 0.002
#: bound on the cancellation drain: workers notice the abort event within
#: one engine quantum, so this only guards against a wedged worker
_CANCEL_WAIT_SECONDS = 5.0


@dataclass
class PartitionFetch:
    """The gathered outcome of one partition's retrieval."""

    partition: int
    rows: int
    cost: float
    io: int
    description: str


@dataclass
class ScatterInfo:
    """How a partitioned retrieval was scattered and merged.

    Attached to the merged result as ``result.scatter``; benchmarks and
    the metrics layer read it.
    """

    table: str
    partitions: int
    candidates: tuple[int, ...]
    workers: int
    ordered_merge: bool = False
    merged_rows: int = 0
    fetches: list[PartitionFetch] = field(default_factory=list)

    @property
    def pruned(self) -> int:
        return self.partitions - len(self.candidates)

    @property
    def serial_cost(self) -> float:
        """Total fetch cost: the modeled time of a 1-worker run."""
        return sum(fetch.cost for fetch in self.fetches)

    @property
    def critical_path_cost(self) -> float:
        """Modeled parallel time: the heaviest worker's summed fetch cost
        under greedy longest-processing-time assignment."""
        return critical_path([fetch.cost for fetch in self.fetches], self.workers)


#: the gate verdict partition fetches always get: partition-level races
#: stay races (gating happens once, at the coordinator's level of the
#: learned state), and worker threads never read mutable parent stats
_NEVER_TRUST = ConfidenceVerdict(
    trust=False, score=0.0, count=0, mean_log_q=0.0, var_log_q=0.0, threshold=1.0
)


class PartitionFeedbackView:
    """Thread-confined selectivity feedback for one partition fetch.

    Carries a read-only snapshot of the *parent* table's learned
    correction ratios into the fetch — so a partition's initial estimates
    start from the parent signature's observed selectivity even on worker
    threads — and buffers the fetch's own observations. The coordinator
    replays every buffer into the parent store in partition order after
    the gather, keeping learned state byte-identical at every worker
    count.
    """

    enabled = True

    def __init__(self, ratios: dict[tuple[str, str], float]) -> None:
        self._ratios = ratios
        self.adjustments = 0
        #: (index_name, restriction, estimated, actual) in observation order
        self.buffered: list[tuple] = []

    def adjust(
        self, table: str, index_name: str, restriction: Any, estimated: float
    ) -> int | None:
        ratio = self._ratios.get((index_name, predicate_signature(restriction)))
        if ratio is None:
            return None
        self.adjustments += 1
        return max(0, round(estimated * ratio))

    def record(
        self, table: str, index_name: str, restriction: Any,
        estimated: float, actual: int,
    ) -> None:
        self.buffered.append((index_name, restriction, estimated, actual))


class PartitionEstimatorView:
    """Thread-confined estimator stand-in for one partition fetch.

    ``estimate_range`` consults frozen copies of the parent table's
    self-tuning histograms; ``record`` buffers observations the
    coordinator replays into the parent estimator (under the parent table
    name) after the gather. The confidence gate never fires inside a
    partition fetch: ``combined_verdict`` is always cold, so
    partition-level competitions remain races while the parent-level
    signature statistics still learn from every fetch.
    """

    enabled = True

    def __init__(self, histograms: dict[str, Any]) -> None:
        self._histograms = histograms
        self.buffered: list[tuple] = []
        self.trusted = 0
        self.competed = 0

    def estimate_range(
        self, table: str, index: str, lo: Any, hi: Any
    ) -> float | None:
        hist = self._histograms.get(index)
        if hist is None:
            return None
        return hist.estimate(lo, hi)

    def combined_verdict(self, pairs: list) -> ConfidenceVerdict:
        return _NEVER_TRUST

    def record(
        self, table: str, index: str, restriction: Any,
        estimated: float, actual: int, lo: Any = None, hi: Any = None,
    ) -> None:
        self.buffered.append((index, restriction, estimated, actual, lo, hi))


def critical_path(costs: list[float], workers: int) -> float:
    """LPT makespan of ``costs`` over ``workers`` identical workers."""
    if not costs:
        return 0.0
    if workers <= 1:
        return sum(costs)
    loads = [0.0] * min(workers, len(costs))
    for cost in sorted(costs, reverse=True):
        slot = loads.index(min(loads))
        loads[slot] += cost
    return max(loads)


def _fetch_partition_job(child, request, lock, abort):
    """Run one partition's retrieval to completion on a worker thread.

    Returns ``(result, aborted)``; on abort the partition generator is
    closed (abandoning scans, releasing pins) and the live partial result
    comes back so its sunk cost can be accounted.
    """
    with lock:
        gen = child.retrieval_engine().run_steps(request, None, None)
        last = None
        try:
            while True:
                if abort.is_set():
                    gen.close()
                    return last, True
                try:
                    last = next(gen)
                except StopIteration as stop:
                    return stop.value, False
        except BaseException:
            gen.close()
            raise


def scatter_steps(
    table: Any,
    request: RetrievalRequest,
    tracer: "Tracer | None" = None,
    feedback: Any = None,
    estimator: Any = None,
) -> Generator[RetrievalResult, None, RetrievalResult]:
    """Execute one retrieval against a partitioned table.

    ``table`` is a :class:`~repro.db.partitioned.PartitionedTable`; the
    generator contract matches
    :meth:`~repro.engine.retrieval.SingleTableRetrieval.run_steps`.
    """
    trace = RetrievalTrace(tracer)
    audit = trace.audit
    goal = request.goal
    if goal is OptimizationGoal.DEFAULT:
        goal = OptimizationGoal.TOTAL_TIME

    partitioner = table.partitioner
    candidates = partitioner.candidate_partitions(
        request.restriction, request.host_vars
    )
    configured_workers = max(1, table.config.partition_workers)
    parallel = configured_workers > 1 and len(candidates) > 1
    effective_workers = (
        min(configured_workers, len(candidates)) if parallel else 1
    )

    span = trace.tracer.begin(
        "scatter",
        table=table.name,
        partitions=partitioner.partitions,
        candidates=len(candidates),
        workers=effective_workers,
        goal=goal.value,
    )
    if audit.enabled:
        audit.begin_retrieval(table.name, request)
        audit.decision(
            DecisionKind.SCATTER,
            f"scatter[{len(candidates)}/{partitioner.partitions}]",
            partitions=partitioner.partitions,
            candidates=list(candidates),
            pruned=partitioner.partitions - len(candidates),
            workers=effective_workers,
            method=partitioner.spec.method,
        )

    result = RetrievalResult(
        rows=[], rids=[], trace=trace, description="", goal=goal
    )
    info = ScatterInfo(
        table=table.name,
        partitions=partitioner.partitions,
        candidates=candidates,
        workers=effective_workers,
        ordered_merge=bool(request.order_by),
    )
    result.scatter = info

    # every partition fetch is self-contained: untraced and uncached, so
    # nothing mutable is shared across worker threads; the coordinator
    # owns all observability. Selectivity feedback and the estimator are
    # forwarded as thread-confined *views*: read-only snapshots of the
    # parent table's learned state in, buffered observations out, replayed
    # into the parent stores in partition order after the gather.
    feedback_views: dict[int, PartitionFeedbackView] = {}
    estimator_views: dict[int, PartitionEstimatorView] = {}
    if feedback is not None:
        ratios = feedback.snapshot_for(table.name)
        feedback_views = {
            index: PartitionFeedbackView(ratios) for index in candidates
        }
    if estimator is not None and estimator.enabled:
        frozen = estimator.histogram_snapshot(table.name)
        estimator_views = {
            index: PartitionEstimatorView(frozen) for index in candidates
        }

    def request_for(index: int) -> RetrievalRequest:
        return replace(
            request, host_vars=dict(request.host_vars),
            predicate_cache=None,
            feedback=feedback_views.get(index),
            estimator=estimator_views.get(index),
        )

    def fold_costs(outcome: RetrievalResult) -> None:
        result.estimation_cost += outcome.estimation_cost
        result.execution_cost += outcome.execution_cost
        result.execution_io += outcome.execution_io
        for counter in fields(outcome.trace.counters):
            setattr(
                result.trace.counters,
                counter.name,
                getattr(result.trace.counters, counter.name)
                + getattr(outcome.trace.counters, counter.name),
            )

    runs: list[tuple[list[tuple], list[Any]]] = []

    def gather_one(index: int, outcome: RetrievalResult) -> None:
        fold_costs(outcome)
        runs.append((outcome.rows, outcome.rids))
        if outcome.stopped_early:
            result.stopped_early = True
        info.fetches.append(
            PartitionFetch(
                partition=index,
                rows=len(outcome.rows),
                cost=outcome.total_cost,
                io=outcome.execution_io,
                description=outcome.description,
            )
        )
        fetch_span = trace.tracer.begin("partition-fetch", partition=index)
        trace.tracer.end(
            fetch_span,
            rows=len(outcome.rows),
            cost=round(outcome.total_cost, 3),
            io=outcome.execution_io,
            strategy=outcome.description,
        )

    try:
        if not parallel:
            # serial scatter: the scheduler thread steps each partition's
            # engine directly, yielding once per quantum — with one
            # worker no threads exist at all, so no partition locks are
            # needed (and taking them across yields could deadlock two
            # interleaved sessions on the one scheduler thread)
            for index in candidates:
                child = table.partitions[index]
                gen = child.retrieval_engine().run_steps(request_for(index), None, None)
                last: RetrievalResult | None = None
                try:
                    while True:
                        try:
                            last = next(gen)
                        except StopIteration as stop:
                            gather_one(index, stop.value)
                            break
                        yield result
                except GeneratorExit:
                    gen.close()
                    if last is not None:
                        fold_costs(last)
                    raise
        else:
            abort = threading.Event()
            pool = table.worker_pool()
            pending = {
                pool.submit(
                    _fetch_partition_job,
                    table.partitions[index],
                    request_for(index),
                    table.partition_locks[index],
                    abort,
                ): index
                for index in candidates
            }
            try:
                while True:
                    done, not_done = _futures.wait(
                        pending, timeout=_POLL_SECONDS
                    )
                    if not not_done:
                        break
                    yield result
            except GeneratorExit:
                abort.set()
                for future in pending:
                    future.cancel()
                done, _ = _futures.wait(
                    pending, timeout=_CANCEL_WAIT_SECONDS
                )
                for future in done:
                    if future.cancelled():
                        continue
                    if future.exception() is not None:
                        continue
                    outcome, _aborted = future.result()
                    if outcome is not None:
                        fold_costs(outcome)
                raise
            # gather in partition order regardless of completion order
            by_index = {index: future for future, index in pending.items()}
            for index in candidates:
                outcome, aborted = by_index[index].result()
                if aborted or outcome is None:
                    raise RuntimeError(
                        f"partition {index} fetch aborted without cancellation"
                    )
                gather_one(index, outcome)
    except GeneratorExit:
        trace.tracer.end(span, cancelled=True)
        raise

    # replay buffered observations into the parent stores, in partition
    # order, under the parent table's name: learned state ends up
    # byte-identical regardless of worker count or completion order
    for index in candidates:
        view = feedback_views.get(index)
        if view is not None:
            for index_name, restriction, estimated, actual in view.buffered:
                feedback.record(table.name, index_name, restriction, estimated, actual)
        est_view = estimator_views.get(index)
        if est_view is not None:
            for index_name, restriction, estimated, actual, lo, hi in est_view.buffered:
                estimator.record(
                    table.name, index_name, restriction, estimated, actual,
                    lo=lo, hi=hi,
                )

    if request.order_by:
        positions = [table.schema.index_of(name) for name in request.order_by]
        rows, rids = merge_sorted_runs(runs, positions)
        merge_label = "merge"
    else:
        rows, rids = bag_union(runs)
        merge_label = "union"
    if request.limit is not None and len(rows) > request.limit:
        del rows[request.limit:]
        del rids[request.limit:]
        result.stopped_early = True
    result.rows.extend(rows)
    result.rids.extend(rids)
    info.merged_rows = len(result.rows)

    strategies: list[str] = []
    for fetch in info.fetches:
        if fetch.description not in strategies:
            strategies.append(fetch.description)
    result.description = (
        f"scatter[{len(candidates)}/{partitioner.partitions}, "
        f"w={effective_workers}]: "
        + (" | ".join(strategies) if strategies else "pruned to nothing")
        + f" -> {merge_label}"
    )

    trace.emit(
        EventKind.RETRIEVAL_COMPLETE,
        rows=len(result.rows),
        partitions=len(candidates),
    )
    stats = table.partition_stats
    if stats is not None:
        stats.record_scatter(
            fetch_rows=[fetch.rows for fetch in info.fetches],
            fetch_costs=[fetch.cost for fetch in info.fetches],
            merged_rows=info.merged_rows,
            pruned=info.pruned,
            workers=effective_workers,
            critical_path_cost=info.critical_path_cost,
            ordered=info.ordered_merge,
        )
    if audit.enabled:
        audit.end_retrieval(result)
    trace.tracer.end(
        span,
        rows=len(result.rows),
        cost=round(result.total_cost, 3),
        io=result.execution_io,
        strategy=result.description,
    )
    return result

"""Gather-side merge operators.

Each partition fetch delivers an independent ``(rows, rids)`` run. Sscan
goals (the request carries ``order_by``) merge the runs with an ordered
k-way merge — every partition already delivered in order, so the merge is
a single :func:`heapq.merge` pass. Tscan goals take the bag union in
partition order, which keeps the output deterministic at every worker
count (workers change *when* runs arrive, never the gather order).
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.storage.rid import RID

#: one partition's delivered output
Run = tuple[list[tuple], list[RID]]


def bag_union(runs: Sequence[Run]) -> Run:
    """Concatenate runs in partition order (unordered goals)."""
    rows: list[tuple] = []
    rids: list[RID] = []
    for part_rows, part_rids in runs:
        rows.extend(part_rows)
        rids.extend(part_rids)
    return rows, rids


def merge_sorted_runs(runs: Sequence[Run], key_positions: Sequence[int]) -> Run:
    """Ordered k-way merge of per-partition sorted runs.

    ``key_positions`` are the ``order_by`` columns' positions in the
    delivered row tuples. Ties across partitions break by partition
    index, so the merged order is total and deterministic.
    """
    positions = tuple(key_positions)

    def annotate(part_index: int, run: Run):
        part_rows, part_rids = run
        for row, rid in zip(part_rows, part_rids):
            yield (tuple(row[p] for p in positions), part_index, row, rid)

    rows: list[tuple] = []
    rids: list[RID] = []
    # the (key, partition) prefix is totally ordered, so heapq never
    # compares the trailing row/rid payloads
    for _, _, row, rid in heapq.merge(
        *(annotate(i, run) for i, run in enumerate(runs)),
        key=lambda item: (item[0], item[1]),
    ):
        rows.append(row)
        rids.append(rid)
    return rows, rids

"""Partitioned storage and scatter-gather retrieval.

The paper's Figure-4 architecture is a *pair* of processes racing
strategies over one table. This package generalizes that template to N
workers over N table partitions: a ``PARTITION BY HASH(col)`` /
``PARTITION BY RANGE(col)`` table stores its rows in per-partition heap
files and B-trees (each behind a private buffer pool), and one retrieval
fans out as independent per-partition retrievals — each running the full
dynamic engine, with its own initial stage, competition, and two-stage
switch rule — whose results are merged back into a single
:class:`~repro.engine.retrieval.RetrievalResult` (ordered k-way merge
when the request asks for order, bag union otherwise).

Cost accounting is conservative by construction: the merged result's
estimation/execution cost and physical I/O are exactly the sums of the
per-partition meters, so a scatter at ``partition_workers=8`` reports the
same totals as the same scatter run serially at ``partition_workers=1``.
"""

from repro.partition.partitioner import (
    HashPartitioner,
    Partitioner,
    PartitionSpec,
    RangePartitioner,
    make_partitioner,
    partition_name,
    stable_hash,
)
from repro.partition.merge import bag_union, merge_sorted_runs
from repro.partition.scatter import PartitionFetch, ScatterInfo, scatter_steps
from repro.partition.stats import PartitionStats

__all__ = [
    "HashPartitioner",
    "Partitioner",
    "PartitionSpec",
    "RangePartitioner",
    "PartitionFetch",
    "PartitionStats",
    "ScatterInfo",
    "bag_union",
    "make_partitioner",
    "merge_sorted_runs",
    "partition_name",
    "scatter_steps",
    "stable_hash",
]

"""Counterfactual replay and regret accounting.

The audit log (:mod:`repro.obs.audit`) knows which strategy the optimizer
chose and which alternatives it rejected; this module re-executes both
against the *same snapshot* to turn each tactic-selection decision into
realized regret — the post-hoc decision-quality metric of Chu/Halpern/
Seshadri's least-expected-cost framing, measured instead of modelled.

Replays are isolated and budget-capped so they can never perturb or stall
production queries:

* **Shadow buffer pool** — each replay runs over shallow copies of the
  table's heap and B-trees whose ``buffer_pool`` points at a fresh
  :class:`~repro.storage.buffer_pool.BufferPool` on the same pager. The
  page images are shared read-only; the production pool's cache contents,
  LRU order, and hit/miss statistics are untouched. Jscan spills allocate
  (and on discard free) temp pages through the shared pager exactly as a
  cancelled production query would.
* **Cold-for-cold fairness** — the chosen strategy and every alternative
  replay on *identical fresh pools*, so the comparison is between plans,
  not between one plan's warm cache and another's cold one. Regret is
  therefore ``max(0, chosen_replay − best_alternative_replay)``.
* **Step budget** — ``config.replay_budget_steps`` caps each replay; a
  hopeless alternative (say, a Tscan of a huge table losing to an index
  nobody doubted) is truncated, its partial cost standing as a lower bound
  of its true cost.

The entry point is :func:`run_compete`, called by ``EXPLAIN COMPETE`` after
the audited statement finishes — off the scheduler's hot path, on the
caller's time.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from dataclasses import replace as dataclass_replace
from typing import Any

from repro.obs.audit import AuditLog, RetrievalAudit


@dataclass
class ReplayOutcome:
    """One forced-strategy replay: realized cost on a fresh shadow pool."""

    strategy: str
    cost: float = 0.0
    io: int = 0
    rows: int = 0
    #: the replay hit the step budget; ``cost`` is a lower bound
    truncated: bool = False
    #: the strategy could not run against this arrangement (error message)
    failed: str | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "strategy": self.strategy,
            "cost": round(self.cost, 3),
            "io": self.io,
            "rows": self.rows,
        }
        if self.truncated:
            out["truncated"] = True
        if self.failed is not None:
            out["failed"] = self.failed
        return out

    def __str__(self) -> str:
        if self.failed is not None:
            return f"{self.strategy}: failed ({self.failed})"
        suffix = ", truncated at budget" if self.truncated else ""
        return f"{self.strategy}: cost {self.cost:.1f} ({self.io} io{suffix})"


@dataclass
class RetrievalCompete:
    """The competition verdict for one retrieval's tactic selection."""

    index: int
    table: str
    chosen: str
    chosen_outcome: ReplayOutcome | None = None
    alternatives: list[ReplayOutcome] = field(default_factory=list)
    #: the production run's realized cost (for reference; regret compares
    #: replay against replay, cold-for-cold)
    production_cost: float = 0.0

    @property
    def best_alternative(self) -> ReplayOutcome | None:
        """The cheapest successfully replayed alternative."""
        valid = [out for out in self.alternatives if out.failed is None]
        if not valid:
            return None
        return min(valid, key=lambda out: out.cost)

    @property
    def regret(self) -> float:
        """Realized regret: chosen replay cost above the best alternative
        (0.0 when the choice was right, or nothing could be compared)."""
        best = self.best_alternative
        if best is None or self.chosen_outcome is None:
            return 0.0
        if self.chosen_outcome.failed is not None:
            return 0.0
        return max(0.0, self.chosen_outcome.cost - best.cost)

    @property
    def advantage(self) -> float | None:
        """Chosen cost over best-alternative cost (< 1 means the optimizer
        won; None when nothing could be compared)."""
        best = self.best_alternative
        if best is None or self.chosen_outcome is None:
            return None
        if self.chosen_outcome.failed is not None or best.cost <= 0:
            return None
        return self.chosen_outcome.cost / best.cost

    def to_dict(self) -> dict[str, Any]:
        return {
            "retrieval": self.index,
            "table": self.table,
            "chosen": self.chosen,
            "production_cost": round(self.production_cost, 3),
            "chosen_replay": (
                self.chosen_outcome.to_dict() if self.chosen_outcome else None
            ),
            "alternatives": [out.to_dict() for out in self.alternatives],
            "regret": round(self.regret, 3),
        }


@dataclass
class CompeteReport:
    """Everything ``EXPLAIN COMPETE`` learned about one statement."""

    retrievals: list[RetrievalCompete] = field(default_factory=list)
    replays: int = 0
    truncated: int = 0
    #: the statement's decision log (per-decision regret included)
    audit: AuditLog | None = None

    @property
    def total_regret(self) -> float:
        """Summed realized regret across the statement's retrievals."""
        return sum(compete.regret for compete in self.retrievals)

    @property
    def competition_cost(self) -> float:
        """Summed chosen-strategy replay cost (compared retrievals only)."""
        return sum(
            compete.chosen_outcome.cost
            for compete in self.retrievals
            if compete.chosen_outcome is not None
            and compete.chosen_outcome.failed is None
            and compete.best_alternative is not None
        )

    @property
    def rejected_cost(self) -> float:
        """Summed best-rejected-alternative replay cost."""
        return sum(
            compete.best_alternative.cost
            for compete in self.retrievals
            if compete.chosen_outcome is not None
            and compete.chosen_outcome.failed is None
            and compete.best_alternative is not None
        )

    @property
    def advantage(self) -> float | None:
        """Aggregate chosen/rejected cost ratio (the paper's ~2x claim
        shows up as a ratio well below 1)."""
        rejected = self.rejected_cost
        if rejected <= 0:
            return None
        return self.competition_cost / rejected

    def to_dict(self) -> dict[str, Any]:
        return {
            "retrievals": [compete.to_dict() for compete in self.retrievals],
            "replays": self.replays,
            "truncated": self.truncated,
            "total_regret": round(self.total_regret, 3),
            "decisions": self.audit.to_dict() if self.audit is not None else None,
        }

    def format(self) -> str:
        """The COMPETE section of the EXPLAIN output."""
        lines = [
            f"Competition: {len(self.retrievals)} retrieval(s), "
            f"{self.replays} counterfactual replay(s)"
            + (f" ({self.truncated} truncated)" if self.truncated else "")
        ]
        for compete in self.retrievals:
            lines.append(
                f"  retrieval #{compete.index} {compete.table}: "
                f"chose {compete.chosen} "
                f"(production cost {compete.production_cost:.1f})"
            )
            if compete.chosen_outcome is not None:
                lines.append(f"    replayed {compete.chosen_outcome}")
            for out in compete.alternatives:
                lines.append(f"    rejected {out}")
            advantage = compete.advantage
            if advantage is not None:
                lines.append(
                    f"    regret {compete.regret:.1f}, "
                    f"chosen/rejected = {advantage:.2f}x"
                )
        advantage = self.advantage
        if advantage is not None:
            lines.append(
                f"  total: competition cost {self.competition_cost:.1f} vs "
                f"rejected {self.rejected_cost:.1f} ({advantage:.2f}x), "
                f"total regret {self.total_regret:.1f}"
            )
        if self.audit is not None:
            lines.append("Decisions:")
            lines.append(self.audit.format())
        return "\n".join(lines)

    def to_text(self) -> str:
        """Renderer-protocol alias of :meth:`format`
        (see :class:`repro.obs.explain.Renderable`)."""
        return self.format()

    def __str__(self) -> str:
        return self.format()


# -- shadow execution --------------------------------------------------------


def _shadow_engine(db: Any, table: Any) -> Any:
    """A retrieval engine over shadow copies of the table's structures.

    The heap and each index B-tree are shallow-copied with their
    ``buffer_pool`` repointed at a fresh pool on the shared pager: page
    *images* are shared (read-only during replay), cache *state* is not.
    """
    from repro.engine.retrieval import SingleTableRetrieval
    from repro.storage.buffer_pool import BufferPool

    pool = BufferPool(
        db.pager,
        capacity=db.buffer_pool.capacity,
        read_ahead_window=db.buffer_pool.read_ahead_window,
    )
    heap = copy.copy(table.heap)
    heap.buffer_pool = pool
    indexes = []
    for info in table.indexes.values():
        btree = copy.copy(info.btree)
        btree.buffer_pool = pool
        indexes.append(dataclass_replace(info, btree=btree))
    return SingleTableRetrieval(heap, table.schema, indexes, pool, db.config)


def replay_strategy(
    db: Any, table: Any, request: Any, strategy: str, budget_steps: int
) -> ReplayOutcome:
    """Re-execute one retrieval with a forced strategy on a fresh shadow
    pool, capped at ``budget_steps`` engine steps."""
    engine = _shadow_engine(db, table)
    replay_request = dataclass_replace(
        request,
        force_strategy=strategy,
        # replays measure the plan, not the adaptive machinery: no feedback
        # recording, and predicates compile locally (the plan's predicate
        # cache belongs to the production execution)
        feedback=None,
        predicate_cache=None,
    )
    outcome = ReplayOutcome(strategy=strategy)
    batch = max(1, db.config.batch_size)
    budget_quanta = max(1, math.ceil(budget_steps / batch)) if budget_steps > 0 else None
    generator = engine.run_steps(replay_request)
    result = None
    quanta = 0
    try:
        while True:
            try:
                result = next(generator)
            except StopIteration as stop:
                result = stop.value
                break
            quanta += 1
            if budget_quanta is not None and quanta >= budget_quanta:
                # closing the generator abandons the replay's scans —
                # spilled temp pages are freed — and folds the partial
                # process costs into the live result
                outcome.truncated = True
                generator.close()
                break
    except Exception as error:  # noqa: BLE001 - a failed replay is a data point
        outcome.failed = f"{type(error).__name__}: {error}"
        return outcome
    if result is not None:
        outcome.cost = result.total_cost
        outcome.io = result.execution_io
        outcome.rows = len(result.rows)
    return outcome


def _shadow_join_handles(db: Any, plan: Any) -> dict[str, Any]:
    """Join-table handles over shadow copies sharing ONE fresh buffer pool.

    A join's tables compete for the same cache in production, so the replay
    shares a single shadow pool across all of them — same capacity, same
    pager, cold state.
    """
    from repro.engine.join import JoinTableHandle
    from repro.storage.buffer_pool import BufferPool

    pool = BufferPool(
        db.pager,
        capacity=db.buffer_pool.capacity,
        read_ahead_window=db.buffer_pool.read_ahead_window,
    )
    handles: dict[str, Any] = {}
    for source in plan.sources:
        table = db.table(source.table)
        heap = copy.copy(table.heap)
        heap.buffer_pool = pool
        indexes = {}
        for info in table.indexes.values():
            btree = copy.copy(info.btree)
            btree.buffer_pool = pool
            indexes[info.name] = dataclass_replace(info, btree=btree)
        handles[source.alias] = JoinTableHandle(
            name=table.name,
            heap=heap,
            schema=table.schema,
            indexes=indexes,
            buffer_pool=pool,
            stats=table.stats,
        )
    return handles


def replay_join_order(
    db: Any, request: Any, order_key: str, budget_steps: int
) -> ReplayOutcome:
    """Re-execute one join with a forced order on a fresh shadow pool."""
    from repro.engine.join import run_join_steps

    outcome = ReplayOutcome(strategy=order_key)
    handles = _shadow_join_handles(db, request.plan)
    batch = max(1, db.config.batch_size)
    budget_quanta = max(1, math.ceil(budget_steps / batch)) if budget_steps > 0 else None
    generator = run_join_steps(
        request.plan,
        handles,
        request.host_vars,
        request.goal,
        db.config,
        force_order=order_key,
    )
    result = None
    quanta = 0
    try:
        while True:
            try:
                result = next(generator)
            except StopIteration as stop:
                result = stop.value
                break
            quanta += 1
            if budget_quanta is not None and quanta >= budget_quanta:
                outcome.truncated = True
                generator.close()
                break
    except Exception as error:  # noqa: BLE001 - a failed replay is a data point
        outcome.failed = f"{type(error).__name__}: {error}"
        return outcome
    if result is not None:
        outcome.cost = result.total_cost
        outcome.io = result.execution_io
        outcome.rows = len(result.rows)
    return outcome


def run_compete(
    db: Any, audit: AuditLog, budget_steps: int | None = None
) -> CompeteReport:
    """Replay every rejected alternative of an audited statement.

    For each retrieval whose tactic selection recorded alternatives, the
    chosen strategy and each alternative are replayed cold-for-cold; the
    decision records are annotated in place (``regret``,
    ``counterfactuals``) and the aggregate report is returned. Join
    retrievals replay at the join-order level: the committed order and
    every rejected candidate order run on shadow tables sharing one fresh
    pool, yielding per-order realized regret.
    """
    if budget_steps is None:
        budget_steps = db.config.replay_budget_steps
    report = CompeteReport(audit=audit)
    for retrieval in audit.retrievals:
        if getattr(retrieval.request, "is_join", False):
            report.retrievals.append(
                _compete_join(db, retrieval, budget_steps, report)
            )
        else:
            report.retrievals.append(
                _compete_retrieval(db, retrieval, budget_steps, report)
            )
    return report


def _compete_join(
    db: Any, retrieval: RetrievalAudit, budget_steps: int, report: CompeteReport
) -> RetrievalCompete:
    """Join-order counterfactuals: replay the committed order and every
    rejected candidate order, cold-for-cold."""
    selection = retrieval.join_order_selection()
    request = retrieval.request
    chosen = request.chosen_order or (
        selection.chosen if selection is not None else ""
    )
    compete = RetrievalCompete(
        index=retrieval.index,
        table=retrieval.table,
        chosen=chosen,
        production_cost=retrieval.cost,
    )
    if selection is None or not chosen:
        return compete
    alternatives = [key for key in request.candidate_orders if key != chosen]
    if not alternatives:
        return compete
    compete.chosen_outcome = replay_join_order(db, request, chosen, budget_steps)
    report.replays += 1
    report.truncated += int(compete.chosen_outcome.truncated)
    for alternative in alternatives:
        outcome = replay_join_order(db, request, alternative, budget_steps)
        compete.alternatives.append(outcome)
        report.replays += 1
        report.truncated += int(outcome.truncated)
    selection.counterfactuals = {
        out.strategy: out.cost
        for out in [compete.chosen_outcome, *compete.alternatives]
        if out.failed is None
    }
    selection.regret = compete.regret
    return compete


def _compete_retrieval(
    db: Any, retrieval: RetrievalAudit, budget_steps: int, report: CompeteReport
) -> RetrievalCompete:
    selection = retrieval.tactic_selection()
    chosen = selection.chosen if selection is not None else retrieval.description
    compete = RetrievalCompete(
        index=retrieval.index,
        table=retrieval.table,
        chosen=chosen,
        production_cost=retrieval.cost,
    )
    if selection is None or retrieval.request is None:
        return compete
    alternatives = [alt for alt in selection.alternatives if alt != selection.chosen]
    if not alternatives:
        return compete
    table = db.table(retrieval.table)
    compete.chosen_outcome = replay_strategy(
        db, table, retrieval.request, selection.chosen, budget_steps
    )
    report.replays += 1
    report.truncated += int(compete.chosen_outcome.truncated)
    for alternative in alternatives:
        outcome = replay_strategy(
            db, table, retrieval.request, alternative, budget_steps
        )
        compete.alternatives.append(outcome)
        report.replays += 1
        report.truncated += int(outcome.truncated)
    selection.counterfactuals = {
        out.strategy: out.cost
        for out in [compete.chosen_outcome, *compete.alternatives]
        if out.failed is None
    }
    selection.regret = compete.regret
    return compete

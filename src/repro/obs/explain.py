"""EXPLAIN ANALYZE rendering.

Executes-then-renders: the statement ran with a live
:class:`~repro.obs.trace.Tracer`, and this module lays the recorded
timeline next to the static plan so estimate-vs-actual drift is visible
per node — estimated RIDs from the initial stage's B-tree descents against
actually delivered rows, per-strategy spans with wall time, engine steps
and cost-meter totals, strategy switches, and abandoned scans.
"""

from __future__ import annotations

from typing import Any, Protocol, Sequence, runtime_checkable

from repro.engine.metrics import EventKind
from repro.obs.trace import Span, Tracer
from repro.sql.plan import PlanNode, format_plan


@runtime_checkable
class Renderable(Protocol):
    """The one rendering protocol every explain-family report speaks.

    ``ExplainResult`` (plain EXPLAIN / ANALYZE / COMPETE),
    :class:`~repro.obs.regret.CompeteReport`, and the join EXPLAIN output
    all expose the same two methods: ``to_text()`` for the shell and
    ``to_dict()`` for machine consumers (JSONL sinks, tests, tooling), so
    callers can render any of them without type-switching.
    """

    def to_text(self) -> str: ...

    def to_dict(self) -> dict[str, Any]: ...


def plan_to_dict(node: PlanNode, goals: dict[int, Any] | None = None) -> dict[str, Any]:
    """Machine-readable plan tree (the structural half of ``to_dict``).

    Mirrors :func:`~repro.sql.plan.format_plan`: one dict per node with its
    ``describe()`` line, inferred goal where one applies (retrieve and join
    nodes), and recursively rendered children.
    """
    out: dict[str, Any] = {
        "node": node.node_type,
        "describe": node.describe(),
    }
    if goals is not None and node.node_type in ("retrieve", "join"):
        goal = goals.get(id(node))
        if goal is not None:
            out["goal"] = goal.value
    children = [plan_to_dict(child, goals) for child in node.children]
    if children:
        out["children"] = children
    return out


def _fmt_estimates(trace) -> str:
    """Per-index estimated RIDs from the initial stage, compactly."""
    parts = [
        f"{event.detail['index']}≈{event.detail['rids']}"
        for event in trace.of_kind(EventKind.INITIAL_ESTIMATE)
    ]
    return ", ".join(parts) if parts else "(no index estimates)"


def _retrieval_line(index: int, info) -> list[str]:
    """The estimate-vs-actual block for one executed retrieval."""
    result = info.result
    counters = result.trace.counters
    lines = [
        f"retrieval #{index + 1} on {info.table} "
        f"[goal: {info.goal.value}]: {result.description}",
        f"  estimated: {_fmt_estimates(result.trace)}",
        f"  actual   : {len(result.rows)} rows delivered, "
        f"{counters.records_fetched} records fetched, "
        f"{counters.fetches_rejected} fetches rejected, "
        f"{counters.index_entries_scanned} index entries scanned",
        f"  dynamics : {counters.scans_started} scans started, "
        f"{counters.scans_abandoned} abandoned, "
        f"{counters.strategy_switches} strategy switches",
        f"  cost     : {result.total_cost:.1f} "
        f"({result.estimation_cost:.1f} estimation + "
        f"{result.execution_cost:.1f} execution; "
        f"{result.execution_io} physical I/O)",
    ]
    return lines


def render_span_tree(span: Span) -> str:
    """The timeline tree with per-span timing/steps/cost annotations.

    Per-quantum scheduling spans and the admission-wait span are collapsed
    into one summary line — hundreds of identical quantum lines would bury
    the strategy timeline the report exists to show.
    """
    tree = span.format(exclude=("quantum", "admission-wait"))
    quanta = [child for child in span.children if child.name == "quantum"]
    if quanta:
        hits = sum(child.attrs.get("hits", 0) for child in quanta)
        misses = sum(child.attrs.get("misses", 0) for child in quanta)
        tree += (
            f"\n  (scheduling: {len(quanta)} quanta, "
            f"{hits} cache hits / {misses} misses attributed)"
        )
    return tree


def render_analyze(
    plan: PlanNode,
    goals: dict[int, Any],
    retrievals: Sequence[Any],
    tracer: Tracer,
    rows_returned: int,
) -> str:
    """Compose the full EXPLAIN ANALYZE report.

    ``retrievals`` is the executed statement's
    :class:`~repro.sql.executor.RetrievalInfo` list; ``tracer`` is the
    (now finished) tracer whose root holds the complete timeline.
    """
    lines: list[str] = ["-- plan ------------------------------------------------"]
    lines.append(format_plan(plan, goals))
    lines.append("")
    lines.append("-- execution -------------------------------------------")
    lines.append(f"rows returned: {rows_returned}")
    for index, info in enumerate(retrievals):
        lines.extend(_retrieval_line(index, info))
    lines.append("")
    lines.append("-- timeline --------------------------------------------")
    lines.append(render_span_tree(tracer.root))
    return "\n".join(lines)

"""Fixed-bucket log2 histograms.

The scheduler's metrics need distributions, not just totals: query latency,
queue wait, engine steps per query, buffer-pool fetch run lengths. A
:class:`LogHistogram` covers many orders of magnitude with a fixed, small
bucket array — bucket ``i`` counts values in ``(2^(e-1), 2^e]`` for
exponents from 2^-20 (≈ a microsecond) to 2^30 — so recording is O(1),
merging is element-wise, and the bucket layout is identical everywhere
(per-session and server-wide histograms merge exactly).

Two invariants matter for reconciliation with the flat counters:

* ``sum`` accumulates the *exact* recorded values (integer-valued inputs
  stay exact up to 2^53), so a histogram's total reconciles equality-level
  with the counter it shadows (e.g. steps-per-query sum == quanta total).
* ``count`` is the number of ``record`` calls, so rates derived from
  counters and histograms agree.

Percentiles come from the bucket upper bounds, clamped to the observed
maximum — a p99 can never exceed any actually-recorded value.
"""

from __future__ import annotations

import math
from typing import Any

#: bucket exponent range: 2^MIN_EXP is the smallest upper bound, values
#: above 2^MAX_EXP land in the overflow bucket
MIN_EXP = -20
MAX_EXP = 30
#: bucket count: one per exponent, plus the underflow (<= 2^MIN_EXP) and
#: overflow (> 2^MAX_EXP) buckets
BUCKETS = MAX_EXP - MIN_EXP + 2


def bucket_index(value: float) -> int:
    """The bucket a value falls into.

    Bucket 0 holds everything at or below ``2^MIN_EXP`` (including zero and
    negatives); bucket ``i`` (1-based over exponents) holds
    ``(2^(MIN_EXP+i-1), 2^(MIN_EXP+i)]``; the last bucket is overflow.
    Exact powers of two land in the bucket they bound (upper-inclusive),
    computed via ``frexp`` so no float-log rounding can misplace them.
    """
    if value <= 0.0 or math.isnan(value):
        return 0
    if math.isinf(value):  # frexp(inf) reports exponent 0, not "huge"
        return BUCKETS - 1
    mantissa, exponent = math.frexp(value)  # value == mantissa * 2**exponent
    upper = exponent - 1 if mantissa == 0.5 else exponent
    return max(0, min(BUCKETS - 1, upper - MIN_EXP))


def bucket_upper_bound(index: int) -> float:
    """Upper bound of a bucket (``inf`` for the overflow bucket)."""
    if index >= BUCKETS - 1:
        return math.inf
    return 2.0 ** (MIN_EXP + index)


class LogHistogram:
    """A fixed-bucket log2 histogram with exact sum and p50/p95/p99."""

    __slots__ = ("name", "counts", "count", "sum", "max", "min")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.counts = [0] * BUCKETS
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self.min = math.inf

    def record(self, value: float) -> None:
        """Record one observation."""
        self.counts[bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded values (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """The smallest bucket upper bound covering ``fraction`` of the
        recorded values, clamped to the observed maximum (0 when empty)."""
        if self.count == 0:
            return 0.0
        threshold = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= threshold and bucket_count:
                return min(bucket_upper_bound(index), self.max)
        return self.max  # pragma: no cover - unreachable (cumulative == count)

    @property
    def p50(self) -> float:
        """Median bucket bound."""
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        """95th-percentile bucket bound."""
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        """99th-percentile bucket bound."""
        return self.percentile(0.99)

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram's observations into this one (bucket
        layouts are identical by construction)."""
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max
        if other.min < self.min:
            self.min = other.min

    def snapshot(self) -> "LogHistogram":
        """An independent deep copy."""
        copy = LogHistogram(self.name)
        copy.merge(self)
        return copy

    def buckets(self) -> list[tuple[float, int]]:
        """Non-empty ``(upper_bound, count)`` pairs, ascending."""
        return [
            (bucket_upper_bound(index), count)
            for index, count in enumerate(self.counts)
            if count
        ]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary."""
        return {
            "name": self.name,
            "count": self.count,
            "sum": self.sum,
            "max": self.max if self.count else 0.0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": [[bound, count] for bound, count in self.buckets()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram({self.name!r}, count={self.count}, sum={self.sum}, "
            f"p50={self.p50}, p99={self.p99})"
        )

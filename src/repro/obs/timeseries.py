"""Continuous time-series monitoring: the engine watching itself run.

The paper's thesis is that an optimizer should *observe its own execution*
and change course; the spans, audit log, and q-error tracker capture
point-in-time snapshots of that self-observation, but none of them has a
time axis — nothing could answer "is p95 latency getting worse?" or "did
estimation quality drift after the data changed?". The
:class:`TimeSeriesRegistry` adds the time dimension: on a configurable
wall-clock interval it snapshots the server's *cumulative* counters
(:class:`~repro.server.metrics.MetricsRegistry` totals, the decision
metrics, the estimator, partition/scatter stats) and diffs consecutive
snapshots into one :class:`WindowStats` per interval — queries/sec,
p50/p95 latency, buffer and plan-cache hit rates, competition skip ratio,
median/p95 q-error, regret mass, worker utilization, queue-wait p95.
Windows live in a fixed ring (``monitor_window`` entries), so always-on
monitoring holds a bounded amount of history.

Sampling is driven from the scheduler's quantum/retire hooks and must be
nearly free: each quantum pays one integer stride check, the wall clock is
consulted only every :attr:`TimeSeriesRegistry.check_every` quanta, and a
full snapshot runs only when the interval has actually elapsed
(``benchmarks/bench_monitor_overhead.py`` gates monitoring-on at <=2%
throughput vs off). The clock is injectable — tests drive a
:class:`SteppingClock` forward manually instead of sleeping.

Interval percentiles come from *bucket deltas*: two cumulative
:class:`~repro.obs.hist.LogHistogram` snapshots diff into the interval's
own histogram, so a window's p95 latency reflects only the queries retired
inside it. The clamp uses the cumulative maximum (the per-interval maximum
is not tracked), which can only round a percentile up to a value some
earlier query actually reached.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Iterable

from repro.obs.hist import BUCKETS, bucket_upper_bound

__all__ = [
    "MetricSample",
    "SteppingClock",
    "TimeSeriesRegistry",
    "WindowStats",
    "delta_percentile",
    "sparkline",
]

#: glyph ramp for :func:`sparkline` (space = no data in that window)
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


class SteppingClock:
    """A deterministic monotonic clock for tests and benchmarks.

    Every call advances by ``auto`` (so latency measurements are a count
    of clock consultations, not wall time), and :meth:`advance` jumps the
    clock forward explicitly — the test's replacement for ``time.sleep``.
    """

    def __init__(self, start: float = 0.0, auto: float = 0.0) -> None:
        self.now = start
        self.auto = auto

    def __call__(self) -> float:
        self.now += self.auto
        return self.now

    def advance(self, seconds: float) -> None:
        """Jump the clock forward (the deterministic ``sleep``)."""
        self.now += seconds


def delta_percentile(
    newer: list[int],
    older: list[int] | None,
    fraction: float,
    clamp: float,
) -> float | None:
    """Percentile of the observations recorded *between* two cumulative
    bucket snapshots; None when the interval recorded nothing.

    ``clamp`` bounds the reported value (the cumulative maximum — see the
    module docstring). Negative deltas (a counter reset mid-interval) are
    treated as empty buckets rather than corrupting the total.
    """
    if older is None:
        older = [0] * BUCKETS
    deltas = [max(0, new - old) for new, old in zip(newer, older)]
    total = sum(deltas)
    if total <= 0:
        return None
    threshold = fraction * total
    cumulative = 0
    for index, count in enumerate(deltas):
        cumulative += count
        if cumulative >= threshold and count:
            return min(bucket_upper_bound(index), clamp)
    return clamp  # pragma: no cover - unreachable (cumulative == total)


def _ratio(numerator: float, denominator: float) -> float | None:
    """numerator/denominator, or None when the interval had no traffic."""
    return numerator / denominator if denominator > 0 else None


def sparkline(values: Iterable[float | None], width: int = 32) -> str:
    """Render a series as Unicode block glyphs (newest right).

    ``None`` entries (windows with no data for the series) render as
    spaces; all values are scaled against the series maximum.
    """
    series = list(values)[-width:]
    present = [value for value in series if value is not None]
    if not present:
        return ""
    top = max(present)
    out = []
    for value in series:
        if value is None:
            out.append(" ")
        elif top <= 0:
            out.append(_SPARK_GLYPHS[0])
        else:
            rank = int(value / top * (len(_SPARK_GLYPHS) - 1) + 0.5)
            out.append(_SPARK_GLYPHS[max(0, min(len(_SPARK_GLYPHS) - 1, rank))])
    return "".join(out)


class MetricSample:
    """One cumulative snapshot of every monitored counter.

    Plain data: capturing copies a handful of ints/floats and four
    52-element bucket lists; no engine object is retained, so a sample can
    never keep a table or pool alive.
    """

    __slots__ = (
        "wall",
        "queries_done",
        "queries_cancelled",
        "queries_failed",
        "retrievals",
        "quanta",
        "cache_hits",
        "cache_misses",
        "latency_counts",
        "latency_max",
        "queue_counts",
        "queue_max",
        "plan_hits",
        "plan_misses",
        "qerror_counts",
        "qerror_max",
        "trusted",
        "competed",
        "regret_sum",
        "busy_cost",
        "capacity_cost",
        "flight_records",
    )

    def __init__(self, wall: float, metrics: Any) -> None:
        self.wall = wall
        totals = metrics.totals()
        self.queries_done = totals.queries_completed
        self.queries_cancelled = totals.queries_cancelled
        self.queries_failed = totals.queries_failed
        self.retrievals = totals.retrievals
        self.quanta = totals.quanta
        self.cache_hits = totals.cache_hits
        self.cache_misses = totals.cache_misses
        self.latency_counts = list(totals.latency.counts)
        self.latency_max = totals.latency.max
        self.queue_counts = list(totals.queue_wait.counts)
        self.queue_max = totals.queue_wait.max
        cache = metrics.plan_cache
        self.plan_hits = cache.hits if cache is not None else 0
        self.plan_misses = cache.misses if cache is not None else 0
        estimator = metrics.estimator
        if estimator is not None and estimator.enabled:
            estimator.flush()  # materialize ring-buffered records first
            hist = estimator.qerror_hist
            self.qerror_counts = list(hist.counts)
            self.qerror_max = hist.max
            self.trusted = estimator.trusted
            self.competed = estimator.competed
        else:
            self.qerror_counts = [0] * BUCKETS
            self.qerror_max = 0.0
            self.trusted = 0
            self.competed = 0
        self.regret_sum = metrics.decisions.regret_hist.sum
        partitions = metrics.partitions
        self.busy_cost = partitions.busy_cost if partitions is not None else 0.0
        self.capacity_cost = (
            partitions.capacity_cost if partitions is not None else 0.0
        )
        self.flight_records = metrics.flight_records


class WindowStats:
    """Per-interval rates derived from two consecutive samples.

    Rate fields are ``None`` when the interval carried no traffic for
    them (no retired query, no pool access, no gate consultation …) —
    downstream consumers (health rules, sparklines, gauges) skip None
    rather than mistaking "no data" for "zero".
    """

    __slots__ = (
        "index",
        "start",
        "end",
        "interval",
        "queries",
        "failures",
        "cancellations",
        "retrievals",
        "quanta",
        "queries_per_sec",
        "p50_latency",
        "p95_latency",
        "cache_hit_rate",
        "plan_cache_hit_rate",
        "competition_skip_ratio",
        "qerror_p50",
        "qerror_p95",
        "qerror_observations",
        "regret_mass",
        "worker_utilization",
        "queue_wait_p95",
        "flight_records",
    )

    def __init__(self, index: int, older: MetricSample, newer: MetricSample) -> None:
        self.index = index
        self.start = older.wall
        self.end = newer.wall
        self.interval = max(newer.wall - older.wall, 1e-9)
        self.queries = (
            (newer.queries_done - older.queries_done)
            + (newer.queries_cancelled - older.queries_cancelled)
            + (newer.queries_failed - older.queries_failed)
        )
        self.failures = newer.queries_failed - older.queries_failed
        self.cancellations = newer.queries_cancelled - older.queries_cancelled
        self.retrievals = newer.retrievals - older.retrievals
        self.quanta = newer.quanta - older.quanta
        self.queries_per_sec = self.queries / self.interval
        self.p50_latency = delta_percentile(
            newer.latency_counts, older.latency_counts, 0.50, newer.latency_max
        )
        self.p95_latency = delta_percentile(
            newer.latency_counts, older.latency_counts, 0.95, newer.latency_max
        )
        self.cache_hit_rate = _ratio(
            newer.cache_hits - older.cache_hits,
            (newer.cache_hits - older.cache_hits)
            + (newer.cache_misses - older.cache_misses),
        )
        self.plan_cache_hit_rate = _ratio(
            newer.plan_hits - older.plan_hits,
            (newer.plan_hits - older.plan_hits)
            + (newer.plan_misses - older.plan_misses),
        )
        self.competition_skip_ratio = _ratio(
            newer.trusted - older.trusted,
            (newer.trusted - older.trusted) + (newer.competed - older.competed),
        )
        self.qerror_p50 = delta_percentile(
            newer.qerror_counts, older.qerror_counts, 0.50, newer.qerror_max
        )
        self.qerror_p95 = delta_percentile(
            newer.qerror_counts, older.qerror_counts, 0.95, newer.qerror_max
        )
        self.qerror_observations = max(
            0, sum(newer.qerror_counts) - sum(older.qerror_counts)
        )
        self.regret_mass = max(0.0, newer.regret_sum - older.regret_sum)
        self.worker_utilization = _ratio(
            newer.busy_cost - older.busy_cost,
            newer.capacity_cost - older.capacity_cost,
        )
        self.queue_wait_p95 = delta_percentile(
            newer.queue_counts, older.queue_counts, 0.95, newer.queue_max
        )
        self.flight_records = newer.flight_records - older.flight_records

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering (incident bundles, exports)."""
        out: dict[str, Any] = {}
        for name in self.__slots__:
            value = getattr(self, name)
            out[name] = round(value, 6) if isinstance(value, float) else value
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WindowStats #{self.index} {self.interval:.3f}s "
            f"queries={self.queries} qps={self.queries_per_sec:.1f}>"
        )


class TimeSeriesRegistry:
    """Ring-buffered interval sampling over one server's metrics.

    Owned by the :class:`~repro.server.scheduler.QueryServer` (created
    when ``config.monitor_enabled`` and ``monitor_interval > 0``). The
    scheduler calls :meth:`tick` once per quantum and per retirement;
    :meth:`note_query` feeds the bounded recent-query ring that incident
    bundles mine for top offenders.
    """

    def __init__(
        self,
        metrics: Any,
        interval: float = 0.25,
        window: int = 240,
        clock: Callable[[], float] = time.perf_counter,
        check_every: int = 32,
    ) -> None:
        self.metrics = metrics
        self.interval = interval
        self.clock = clock
        #: quanta between wall-clock consultations (the per-quantum cost
        #: of monitoring is one integer compare ``check_every - 1`` times
        #: out of ``check_every``)
        self.check_every = max(1, check_every)
        self._ticks = 0
        #: samples taken so far (== windows produced)
        self.samples_taken = 0
        self._windows: deque[WindowStats] = deque(maxlen=max(1, window))
        #: recently retired queries: (sql, session, latency_s, cost)
        self.recent_queries: deque[tuple[str, str, float, float]] = deque(maxlen=64)
        now = clock()
        self._last = MetricSample(now, metrics)
        self._next_due = now + interval

    # -- sampling ------------------------------------------------------------

    def tick(self, force: bool = False) -> WindowStats | None:
        """The scheduler's per-quantum hook: sample iff the interval
        elapsed (``force=True`` samples unconditionally — ``\\top``,
        ``server.health()``, shutdown's final flush)."""
        if not force:
            self._ticks += 1
            if self._ticks < self.check_every:
                return None
            self._ticks = 0
            now = self.clock()
            if now < self._next_due:
                return None
        else:
            now = self.clock()
        return self._sample(now)

    def sample_now(self) -> WindowStats:
        """Take a sample immediately regardless of the interval."""
        return self._sample(self.clock())

    def _sample(self, now: float) -> WindowStats:
        current = MetricSample(now, self.metrics)
        window = WindowStats(self.samples_taken, self._last, current)
        self._last = current
        self.samples_taken += 1
        self._next_due = now + self.interval
        self._windows.append(window)
        return window

    def note_query(
        self, sql: str, session_id: str, latency_s: float, cost: float
    ) -> None:
        """Record one retired query for the incident bundle's offender list."""
        self.recent_queries.append((sql, session_id, latency_s, cost))

    # -- consumers ------------------------------------------------------------

    def windows(self) -> list[WindowStats]:
        """The retained interval windows, oldest first."""
        return list(self._windows)

    def latest(self) -> WindowStats | None:
        """The most recent window (None before the first sample)."""
        return self._windows[-1] if self._windows else None

    def series(self, name: str) -> list[float | None]:
        """One named field across the retained windows, oldest first."""
        return [getattr(window, name) for window in self._windows]

    def top_queries(self, limit: int = 5) -> list[dict[str, Any]]:
        """Slowest recently retired queries (the incident's offenders)."""
        ranked = sorted(self.recent_queries, key=lambda item: -item[2])
        return [
            {
                "sql": sql,
                "session": session_id,
                "latency_ms": round(latency * 1e3, 3),
                "cost": round(cost, 2),
            }
            for sql, session_id, latency, cost in ranked[:limit]
        ]

    # -- rendering -------------------------------------------------------------

    def format_top(self, health: Any | None = None) -> str:
        """The live operator dashboard (shell ``\\top``).

        Pure text over the retained ring — renders identically with or
        without a terminal attached.
        """
        span = len(self._windows)
        header = (
            f"monitor: {self.samples_taken} samples, interval {self.interval}s, "
            f"showing {span}/{self._windows.maxlen} windows"
        )
        lines = [header]
        latest = self.latest()
        if latest is None:
            lines.append("  (no samples yet)")
            return "\n".join(lines)

        def fmt(value: float | None, scale: float = 1.0, pct: bool = False) -> str:
            if value is None:
                return "-"
            if pct:
                return f"{value:.0%}"
            return f"{value * scale:.2f}"

        rows = [
            ("queries/sec", fmt(latest.queries_per_sec), "queries_per_sec"),
            ("p50 latency ms", fmt(latest.p50_latency, 1e3), "p50_latency"),
            ("p95 latency ms", fmt(latest.p95_latency, 1e3), "p95_latency"),
            ("cache hit rate", fmt(latest.cache_hit_rate, pct=True), "cache_hit_rate"),
            (
                "plan-cache hits",
                fmt(latest.plan_cache_hit_rate, pct=True),
                "plan_cache_hit_rate",
            ),
            (
                "competition skips",
                fmt(latest.competition_skip_ratio, pct=True),
                "competition_skip_ratio",
            ),
            ("q-error p50", fmt(latest.qerror_p50), "qerror_p50"),
            ("q-error p95", fmt(latest.qerror_p95), "qerror_p95"),
            ("regret mass", fmt(latest.regret_mass), "regret_mass"),
            (
                "worker util",
                fmt(latest.worker_utilization, pct=True),
                "worker_utilization",
            ),
            ("queue p95 quanta", fmt(latest.queue_wait_p95), "queue_wait_p95"),
        ]
        for label, value, field in rows:
            lines.append(
                f"  {label:<18} {value:>9}  {sparkline(self.series(field))}"
            )
        if health is not None:
            lines.append(f"  health: {health.format_line()}")
        offenders = self.top_queries(3)
        if offenders:
            lines.append("  slowest recent queries:")
            for entry in offenders:
                sql = entry["sql"]
                if len(sql) > 60:
                    sql = sql[:57] + "..."
                lines.append(
                    f"    {entry['latency_ms']:>9.2f}ms  {entry['session']:<8} {sql}"
                )
        return "\n".join(lines)

"""Decision audit: structured records of every optimizer choice.

The tracer (:mod:`repro.obs.trace`) records *what the engine did*; this
module records *what the engine decided and why*. Every choice point of the
dynamic optimizer — goal inference, index ordering, the Section-5
shortcuts, tactic selection, Jscan's two-stage scan abandonment, strategy
switches, selectivity-feedback application — lands in an :class:`AuditLog`
as a :class:`DecisionRecord` carrying the inputs that drove it (estimates,
guaranteed costs, the candidate set) and the alternatives it rejected.

The audit rides on the tracer: a query's :class:`AuditLog` is attached as
``tracer.audit`` and mirrored onto every
:class:`~repro.engine.metrics.RetrievalTrace` the query produces, so the
engine's decision sites pay one ``enabled`` attribute check when auditing
is off (:data:`NULL_AUDIT`, the same null-object discipline as
:data:`~repro.obs.trace.NULL_TRACER`). ``benchmarks/bench_audit_overhead.py``
holds the disabled path to the same <2% throughput budget as tracing.

Two consumers build on the records:

* :mod:`repro.obs.regret` replays the rejected alternatives against a
  shadow buffer pool to turn each :class:`DecisionRecord` into realized
  regret (``EXPLAIN COMPETE`` / ``Connection.audit()``);
* :class:`DecisionMetrics` aggregates server-wide — per-tactic win rates,
  regret and estimate-error-ratio histograms, and the per-retrieval cost
  histogram that reproduces the paper's Figure 2.1/2.2 L-shapes from live
  traffic (``\\decisions`` in the shell, the Prometheus writer).

This module must not import :mod:`repro.obs.trace` (the tracer imports
:data:`NULL_AUDIT` from here) nor anything from :mod:`repro.engine`;
events are matched by their ``kind.value`` strings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.hist import LogHistogram


class DecisionKind(enum.Enum):
    """Kinds of optimizer decisions the audit records."""

    #: which optimization goal the executor inferred for a retrieval
    GOAL_INFERENCE = "goal-inference"
    #: the initial stage's ascending-RID arrangement of Jscan candidates
    INDEX_ORDERING = "index-ordering"
    #: a Section-5 shortcut fired (provably empty / very short range)
    SHORTCUT = "shortcut"
    #: which competition tactic the dispatcher committed to
    TACTIC_SELECTION = "tactic-selection"
    #: Jscan's two-stage competition ended an index scan (or recommended
    #: Tscan) based on projected cost vs the guaranteed best
    STAGE_TRANSITION = "stage-transition"
    #: a mid-flight strategy switch (jscan-won, tscan fallback, filter
    #: installation, foreground termination, ...)
    STRATEGY_SWITCH = "strategy-switch"
    #: a selectivity-feedback correction replaced a raw descent estimate
    FEEDBACK_APPLICATION = "feedback-application"
    #: which left-deep join order the join competition committed to (or
    #: switched to mid-flight when a pilot overtook the estimated best)
    JOIN_ORDER = "join-order"
    #: how a partitioned retrieval was fanned out: candidate partitions
    #: after pruning, worker count, partitioning method
    SCATTER = "scatter"
    #: the variance gate trusted a demonstrably accurate estimate and ran
    #: the winning strategy directly, skipping the pilot race; inputs
    #: carry the confidence score, observation count, and log-q moments
    COMPETITION_SKIPPED = "competition-skipped"


class DecisionRecord:
    """One optimizer decision: what was chosen, over what, and why.

    ``inputs`` holds the numbers the decision was computed from (estimated
    RIDs, scan costs, guaranteed best cost, ...). ``alternatives`` names the
    rejected options in the replayable strategy vocabulary of
    :attr:`repro.engine.retrieval.RetrievalRequest.force_strategy`; after a
    counterfactual replay, ``counterfactuals`` maps each replayed strategy
    to its realized cost and ``regret`` is ``max(0, chosen − best
    alternative)`` in page-I/O cost units.

    Input capture is lazy: the record can *borrow* an engine detail
    mapping by reference (``raw_inputs``) and only materializes a private
    ``inputs`` dict — applying ``drop_keys`` filtering — when someone
    actually reads it (export, EXPLAIN COMPETE, DecisionMetrics). The
    audit-on hot path therefore pays one object construction per
    decision, never a dict copy. Safe because
    :class:`~repro.engine.metrics.TraceEvent` is frozen and the engine
    never mutates a detail dict after emitting it.
    """

    __slots__ = (
        "kind",
        "chosen",
        "alternatives",
        "retrieval_index",
        "regret",
        "counterfactuals",
        "_inputs",
        "_raw",
        "_drop",
    )

    def __init__(
        self,
        kind: DecisionKind,
        chosen: str,
        alternatives: tuple[str, ...] = (),
        inputs: dict[str, Any] | None = None,
        retrieval_index: int = -1,
        regret: float | None = None,
        counterfactuals: dict[str, float] | None = None,
        raw_inputs: Any = None,
        drop_keys: tuple[str, ...] = (),
    ) -> None:
        self.kind = kind
        self.chosen = chosen
        self.alternatives = alternatives
        #: which retrieval of the statement made this decision (-1 = the
        #: statement level, e.g. goal inference before the retrieval
        #: starts)
        self.retrieval_index = retrieval_index
        #: realized regret in cost units, set by counterfactual replay
        self.regret = regret
        #: replayed strategy -> realized cost, set by counterfactual replay
        self.counterfactuals = counterfactuals
        self._inputs = inputs
        self._raw = raw_inputs
        self._drop = drop_keys

    @property
    def inputs(self) -> dict[str, Any]:
        """The decision's input numbers, materialized on first read."""
        inputs = self._inputs
        if inputs is None:
            raw = self._raw
            if raw is None:
                inputs = {}
            elif self._drop:
                inputs = {
                    key: value
                    for key, value in raw.items()
                    if key not in self._drop
                }
            else:
                inputs = dict(raw)
            self._inputs = inputs
        return inputs

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering (flight recorder, EXPLAIN COMPETE)."""
        out: dict[str, Any] = {
            "kind": self.kind.value,
            "chosen": self.chosen,
            "retrieval": self.retrieval_index,
        }
        if self.alternatives:
            out["alternatives"] = list(self.alternatives)
        if self.inputs:
            out["inputs"] = {
                key: value
                if isinstance(value, (str, int, float, bool, type(None), list, tuple, dict))
                else str(value)
                for key, value in self.inputs.items()
            }
        if self.regret is not None:
            out["regret"] = round(self.regret, 3)
        if self.counterfactuals is not None:
            out["counterfactuals"] = {
                strategy: round(cost, 3)
                for strategy, cost in self.counterfactuals.items()
            }
        return out

    def __str__(self) -> str:
        parts = f"{self.kind.value}: {self.chosen}"
        if self.alternatives:
            parts += f" (over {', '.join(self.alternatives)})"
        if self.regret is not None:
            parts += f" regret={self.regret:.1f}"
        return parts


@dataclass
class RetrievalAudit:
    """The decisions and outcome of one retrieval execution.

    Keeps the original :class:`~repro.engine.retrieval.RetrievalRequest` so
    :mod:`repro.obs.regret` can re-execute the retrieval with a forced
    strategy against a shadow buffer pool.
    """

    index: int
    table: str
    request: Any = None
    decisions: list[DecisionRecord] = field(default_factory=list)
    #: (index name, estimated RIDs, observed RIDs) per completed scan
    estimates: list[tuple[str, float, int]] = field(default_factory=list)
    #: filled by :meth:`AuditLog.end_retrieval` when the retrieval completes
    complete: bool = False
    cost: float = 0.0
    io: int = 0
    rows: int = 0
    description: str = ""

    def tactic_selection(self) -> DecisionRecord | None:
        """The tactic-selection decision (the replayable choice point)."""
        for record in self.decisions:
            if record.kind is DecisionKind.TACTIC_SELECTION:
                return record
        return None

    def join_order_selection(self) -> DecisionRecord | None:
        """The initial join-order decision (carries every candidate as an
        alternative — the join-level replayable choice point)."""
        for record in self.decisions:
            if record.kind is DecisionKind.JOIN_ORDER:
                return record
        return None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "retrieval": self.index,
            "table": self.table,
            "complete": self.complete,
            "cost": round(self.cost, 3),
            "io": self.io,
            "rows": self.rows,
            "strategy": self.description,
            "decisions": [record.to_dict() for record in self.decisions],
        }
        if self.estimates:
            out["estimates"] = [
                {"index": name, "estimated": round(estimated, 1), "actual": actual}
                for name, estimated, actual in self.estimates
            ]
        return out


class AuditLog:
    """One query's decision log, attached to its tracer as ``tracer.audit``.

    The engine calls :meth:`begin_retrieval`/:meth:`end_retrieval` around
    every retrieval and :meth:`decision` at explicit choice points;
    :meth:`observe_event` derives further decisions from the trace-event
    stream (shortcuts, strategy switches, feedback applications) without
    extra engine instrumentation.
    """

    enabled = True

    def __init__(self) -> None:
        #: statement-level decisions (goal inference happens before the
        #: retrieval exists)
        self.query_decisions: list[DecisionRecord] = []
        self.retrievals: list[RetrievalAudit] = []
        self._current: RetrievalAudit | None = None

    # -- retrieval lifecycle ------------------------------------------------

    def begin_retrieval(self, table: str, request: Any = None) -> RetrievalAudit:
        """Open the decision scope of one retrieval."""
        audit = RetrievalAudit(index=len(self.retrievals), table=table, request=request)
        self.retrievals.append(audit)
        self._current = audit
        return audit

    def end_retrieval(self, result: Any) -> None:
        """Close the current retrieval scope with its realized outcome."""
        current = self._current
        if current is None:
            return
        current.complete = True
        current.cost = float(getattr(result, "total_cost", 0.0))
        current.io = int(getattr(result, "execution_io", 0))
        current.rows = len(getattr(result, "rows", ()))
        current.description = getattr(result, "description", "")
        self._current = None

    # -- recording ----------------------------------------------------------

    def decision(
        self,
        kind: DecisionKind,
        chosen: str,
        alternatives: tuple[str, ...] = (),
        **inputs: Any,
    ) -> DecisionRecord:
        """Record one decision in the current retrieval (or statement) scope."""
        current = self._current
        record = DecisionRecord(
            kind=kind,
            chosen=chosen,
            alternatives=alternatives,
            inputs=inputs,
            retrieval_index=current.index if current is not None else -1,
        )
        if current is not None:
            current.decisions.append(record)
        else:
            self.query_decisions.append(record)
        return record

    def decision_raw(
        self,
        kind: DecisionKind,
        chosen: str,
        raw_inputs: Any = None,
        drop_keys: tuple[str, ...] = (),
    ) -> DecisionRecord:
        """Record a decision whose inputs are *borrowed* from an engine
        detail mapping — the zero-copy hot path used by
        :meth:`observe_event`. ``drop_keys`` are filtered out when (if)
        the inputs are materialized at export time."""
        current = self._current
        record = DecisionRecord(
            kind=kind,
            chosen=chosen,
            raw_inputs=raw_inputs,
            drop_keys=drop_keys,
            retrieval_index=current.index if current is not None else -1,
        )
        if current is not None:
            current.decisions.append(record)
        else:
            self.query_decisions.append(record)
        return record

    def observe_event(self, event: Any) -> None:
        """Derive decisions from the engine's trace-event stream.

        Tactic selection and Jscan scan abandonment are *not* mapped here —
        the engine records those explicitly with richer inputs (the
        alternative set, the projection vs guaranteed-cost numbers); mapping
        their events too would double-record them.
        """
        kind = getattr(getattr(event, "kind", None), "value", None)
        if kind is None:
            return
        detail = event.detail
        if kind == "shortcut-empty":
            self.decision_raw(DecisionKind.SHORTCUT, "empty", detail)
        elif kind == "shortcut-small-range":
            self.decision_raw(DecisionKind.SHORTCUT, "small-range", detail)
        elif kind == "strategy-switch":
            self.decision_raw(
                DecisionKind.STRATEGY_SWITCH,
                str(detail.get("to", "?")),
                detail,
                drop_keys=("to",),
            )
        elif kind == "foreground-terminated":
            self.decision_raw(
                DecisionKind.STRATEGY_SWITCH, "terminate-foreground", detail
            )
        elif kind == "tscan-recommended":
            self.decision_raw(
                DecisionKind.STAGE_TRANSITION, "tscan-recommended", detail
            )
        elif kind == "initial-estimate" and "feedback_rids" in detail:
            self.decision_raw(
                DecisionKind.FEEDBACK_APPLICATION, "adjusted-estimate", detail
            )

    def observe_estimate(self, index: str, estimated: float, actual: int) -> None:
        """Record one estimated-vs-observed cardinality pair (completed
        scans only), feeding the estimate-error-ratio histogram."""
        current = self._current
        if current is not None:
            current.estimates.append((index, float(estimated), int(actual)))

    # -- querying -----------------------------------------------------------

    def records(self) -> Iterator[DecisionRecord]:
        """Every decision, statement-level first, then per retrieval."""
        yield from self.query_decisions
        for retrieval in self.retrievals:
            yield from retrieval.decisions

    def max_regret(self) -> float:
        """The largest replay-computed regret (0.0 when nothing replayed)."""
        return max(
            (record.regret for record in self.records() if record.regret is not None),
            default=0.0,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering (flight recorder lines)."""
        return {
            "query_decisions": [record.to_dict() for record in self.query_decisions],
            "retrievals": [retrieval.to_dict() for retrieval in self.retrievals],
        }

    def format(self) -> str:
        """Multi-line human-readable decision log (EXPLAIN COMPETE)."""
        lines = []
        for record in self.query_decisions:
            lines.append(f"  {record}")
        for retrieval in self.retrievals:
            lines.append(
                f"  retrieval #{retrieval.index} {retrieval.table}"
                + (
                    f": {retrieval.description} "
                    f"(cost {retrieval.cost:.1f}, {retrieval.rows} rows)"
                    if retrieval.complete
                    else ": (incomplete)"
                )
            )
            for record in retrieval.decisions:
                lines.append(f"    {record}")
        return "\n".join(lines)


class NullAudit(AuditLog):
    """The audit used when auditing is off: every method is a no-op.

    Shared by every unaudited query (as ``NULL_TRACER.audit`` and the
    default ``Tracer.audit``), so the engine's decision sites stay
    unconditional attribute reads plus one ``enabled`` check.
    """

    enabled = False

    def __init__(self) -> None:
        self.query_decisions = []
        self.retrievals = []
        self._current = None

    def begin_retrieval(self, table: str, request: Any = None) -> RetrievalAudit:
        return RetrievalAudit(index=-1, table=table)

    def end_retrieval(self, result: Any) -> None:
        pass

    def decision(
        self,
        kind: DecisionKind,
        chosen: str,
        alternatives: tuple[str, ...] = (),
        **inputs: Any,
    ) -> DecisionRecord:
        return DecisionRecord(kind=kind, chosen=chosen)

    def decision_raw(
        self,
        kind: DecisionKind,
        chosen: str,
        raw_inputs: Any = None,
        drop_keys: tuple[str, ...] = (),
    ) -> DecisionRecord:
        return DecisionRecord(kind=kind, chosen=chosen)

    def observe_event(self, event: Any) -> None:
        pass

    def observe_estimate(self, index: str, estimated: float, actual: int) -> None:
        pass


#: Audit used when decision auditing is off. All methods are no-ops;
#: sharing one instance is safe.
NULL_AUDIT = NullAudit()


class DecisionMetrics:
    """Server-wide aggregation of decision quality.

    Lives on the :class:`~repro.server.MetricsRegistry`; the scheduler
    absorbs every retired audited query and every EXPLAIN COMPETE report,
    and records every retired retrieval's cost unconditionally — the
    :attr:`retrieval_cost_hist` is the live reproduction of the paper's
    Figure 2.1/2.2 L-shaped cost distributions from production traffic.
    """

    def __init__(self) -> None:
        #: decisions recorded, by :class:`DecisionKind` value
        self.decisions: dict[str, int] = {}
        #: tactic-selection counts by chosen strategy
        self.tactic_selected: dict[str, int] = {}
        #: replay outcomes: chosen strategy beat (or tied) an alternative
        self.tactic_wins: dict[str, int] = {}
        #: replay outcomes: an alternative beat the chosen strategy
        self.tactic_losses: dict[str, int] = {}
        #: counterfactual replays executed / truncated by the step budget
        self.replays = 0
        self.replay_truncated = 0
        #: summed replayed cost of the chosen strategies vs the best
        #: rejected alternatives (the paper's ~2x claim: ratio <= ~0.6)
        self.competition_cost = 0.0
        self.rejected_cost = 0.0
        #: realized regret per replayed decision, cost units
        self.regret_hist = LogHistogram("decision_regret_cost")
        #: observed/estimated cardinality ratio per completed scan
        self.estimate_error_hist = LogHistogram("estimate_error_ratio")
        #: symmetric q-error (max(est/actual, actual/est)) per completed
        #: scan — the estimation-quality program's headline metric
        self.qerror_hist = LogHistogram("estimate_qerror")
        #: execution cost per retired retrieval (the live L-shape)
        self.retrieval_cost_hist = LogHistogram("retrieval_cost")
        #: tables per join-order decision (2–4 with the current planner)
        self.join_depth_hist = LogHistogram("join_depth_tables")
        #: join-order switches observed mid-flight (pilot overtook the
        #: estimated best)
        self.join_order_switches = 0

    # -- recording ----------------------------------------------------------

    def observe_cost(self, cost: float) -> None:
        """Record one retired retrieval's execution cost (all queries)."""
        self.retrieval_cost_hist.record(cost)

    def absorb(self, audit: AuditLog) -> None:
        """Fold one retired query's decision log into the aggregates."""
        for record in audit.records():
            key = record.kind.value
            self.decisions[key] = self.decisions.get(key, 0) + 1
            if record.kind is DecisionKind.TACTIC_SELECTION:
                self.tactic_selected[record.chosen] = (
                    self.tactic_selected.get(record.chosen, 0) + 1
                )
            if record.kind is DecisionKind.JOIN_ORDER:
                tables = record.inputs.get("tables")
                if tables:
                    self.join_depth_hist.record(float(tables))
                if record.inputs.get("switched_from"):
                    self.join_order_switches += 1
            if record.regret is not None:
                self.regret_hist.record(record.regret)
        for retrieval in audit.retrievals:
            for _, estimated, actual in retrieval.estimates:
                if estimated > 0:
                    self.estimate_error_hist.record(actual / estimated)
                    # the same pairs feed the q-error histogram, so its
                    # count reconciles exactly with the audit log's
                    # estimate observations (tested identity)
                    est = max(float(estimated), 1.0)
                    act = max(float(actual), 1.0)
                    self.qerror_hist.record(est / act if est >= act else act / est)

    def absorb_compete(self, report: Any) -> None:
        """Fold one :class:`~repro.obs.regret.CompeteReport` in: win/loss
        counters per tactic and the competition-vs-rejected cost sums."""
        self.replays += report.replays
        self.replay_truncated += report.truncated
        for compete in report.retrievals:
            chosen = compete.chosen_outcome
            if chosen is None or chosen.failed is not None:
                continue
            for alternative in compete.alternatives:
                if alternative.failed is not None:
                    continue
                # a truncated alternative already cost more than its partial
                # total when the chosen run completed within budget
                won = chosen.cost <= alternative.cost or (
                    alternative.truncated and not chosen.truncated
                )
                bucket = self.tactic_wins if won else self.tactic_losses
                bucket[chosen.strategy] = bucket.get(chosen.strategy, 0) + 1
            best = compete.best_alternative
            if best is not None:
                self.competition_cost += chosen.cost
                self.rejected_cost += best.cost

    # -- querying -----------------------------------------------------------

    @property
    def competition_ratio(self) -> float:
        """Chosen-strategy replay cost over best-rejected replay cost
        (the paper's claim: well below 1, ~0.5 for the 2x win)."""
        if self.rejected_cost <= 0:
            return 0.0
        return self.competition_cost / self.rejected_cost

    def win_rate(self, tactic: str) -> float:
        """Fraction of replayed comparisons the tactic won (0 when never
        replayed)."""
        wins = self.tactic_wins.get(tactic, 0)
        losses = self.tactic_losses.get(tactic, 0)
        total = wins + losses
        return wins / total if total else 0.0

    def merge(self, other: "DecisionMetrics") -> None:
        """Fold another aggregate in (element-wise, like the histograms)."""
        for source, target in (
            (other.decisions, self.decisions),
            (other.tactic_selected, self.tactic_selected),
            (other.tactic_wins, self.tactic_wins),
            (other.tactic_losses, self.tactic_losses),
        ):
            for key, value in source.items():
                target[key] = target.get(key, 0) + value
        self.replays += other.replays
        self.replay_truncated += other.replay_truncated
        self.competition_cost += other.competition_cost
        self.rejected_cost += other.rejected_cost
        self.regret_hist.merge(other.regret_hist)
        self.estimate_error_hist.merge(other.estimate_error_hist)
        self.qerror_hist.merge(other.qerror_hist)
        self.retrieval_cost_hist.merge(other.retrieval_cost_hist)
        self.join_depth_hist.merge(other.join_depth_hist)
        self.join_order_switches += other.join_order_switches

    def format(self) -> str:
        """Multi-line human-readable rendering (shell ``\\decisions``)."""
        lines = ["decision metrics:"]
        if self.decisions:
            ordered = ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.decisions.items())
            )
            lines.append(f"  decisions: {ordered}")
        else:
            lines.append("  decisions: (none recorded — enable audit_enabled "
                         "or run EXPLAIN COMPETE)")
        for tactic in sorted(
            set(self.tactic_selected) | set(self.tactic_wins) | set(self.tactic_losses)
        ):
            wins = self.tactic_wins.get(tactic, 0)
            losses = self.tactic_losses.get(tactic, 0)
            line = f"  tactic {tactic}: selected {self.tactic_selected.get(tactic, 0)}"
            if wins or losses:
                line += (
                    f", replay record {wins}W-{losses}L "
                    f"(win rate {self.win_rate(tactic):.0%})"
                )
            lines.append(line)
        if self.replays:
            lines.append(
                f"  replays: {self.replays} ({self.replay_truncated} truncated), "
                f"competition cost {self.competition_cost:.1f} vs rejected "
                f"{self.rejected_cost:.1f} ({self.competition_ratio:.2f}x)"
            )
        if self.regret_hist.count:
            lines.append(
                f"  regret: n={self.regret_hist.count} "
                f"mean={self.regret_hist.mean:.2f} p95={self.regret_hist.p95:.2f} "
                f"max={self.regret_hist.max:.2f}"
            )
        if self.estimate_error_hist.count:
            lines.append(
                f"  estimate error (actual/estimated): "
                f"n={self.estimate_error_hist.count} "
                f"p50={self.estimate_error_hist.p50:.2f} "
                f"p95={self.estimate_error_hist.p95:.2f}"
            )
        if self.qerror_hist.count:
            lines.append(
                f"  q-error: n={self.qerror_hist.count} "
                f"p50={self.qerror_hist.p50:.2f} "
                f"p95={self.qerror_hist.p95:.2f} "
                f"max={self.qerror_hist.max:.2f}"
            )
        if self.retrieval_cost_hist.count:
            lines.append(
                f"  retrieval cost (L-shape): n={self.retrieval_cost_hist.count} "
                f"p50={self.retrieval_cost_hist.p50:.1f} "
                f"p95={self.retrieval_cost_hist.p95:.1f} "
                f"p99={self.retrieval_cost_hist.p99:.1f} "
                f"max={self.retrieval_cost_hist.max:.1f}"
            )
        if self.join_depth_hist.count:
            lines.append(
                f"  joins: n={self.join_depth_hist.count} "
                f"depth p50={self.join_depth_hist.p50:.0f} "
                f"max={self.join_depth_hist.max:.0f}, "
                f"{self.join_order_switches} mid-flight order switch(es)"
            )
        return "\n".join(lines)

"""Health evaluation over the monitor's time series: SLOs + drift.

"Adaptive Cardinality Estimation" (PAPERS.md) motivates this layer
directly: learned estimates drift as the data changes, so drift must be
*detected*, not assumed away. Two rule families run over every
:class:`~repro.obs.timeseries.WindowStats` the registry produces:

* :class:`ThresholdRule` — SLO checks against absolute limits from the
  engine config (window p95 latency, minimum buffer hit rate, queue-wait
  saturation, per-window regret mass). Breaches are ``critical``.
* :class:`DriftRule` — EWMA-baseline detectors: each window's value
  updates a baseline with ``drift_baseline_alpha``; a window landing a
  configured *factor* away from the baseline (above for q-error, regret,
  and queue wait; below for the hit rates) is a ``warn`` finding. The
  baseline keeps adapting after a breach, so a persistent regime change
  alarms on the transition and then becomes the new normal — drift
  detection is transition detection, exactly the paper's "react to the
  competition in-flight" stance lifted to the time axis.

The :class:`HealthMonitor` aggregates rule findings into a
:class:`HealthReport` per window and, on a *rising edge* (a rule newly
breached), assembles an incident bundle — the recent window ring, the top
offending queries, and the decision-metrics summary — which the scheduler
writes through the existing flight-recorder JSONL path.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = [
    "DriftRule",
    "HealthFinding",
    "HealthMonitor",
    "HealthReport",
    "ThresholdRule",
]

#: severity ordering for the report's overall status
_SEVERITY_RANK = {"ok": 0, "warn": 1, "critical": 2}


class HealthFinding:
    """One rule breach: what fired, on what value, against what reference."""

    __slots__ = ("rule", "severity", "value", "reference", "message")

    def __init__(
        self, rule: str, severity: str, value: float, reference: float, message: str
    ) -> None:
        self.rule = rule
        self.severity = severity
        self.value = value
        self.reference = reference
        self.message = message

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "value": round(self.value, 6),
            "reference": round(self.reference, 6),
            "message": self.message,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HealthFinding {self.rule} {self.severity}: {self.message}>"


class HealthReport:
    """The health verdict for one window (or for a disabled monitor)."""

    def __init__(
        self,
        findings: list[HealthFinding],
        window: Any | None = None,
        enabled: bool = True,
    ) -> None:
        self.findings = findings
        self.window = window
        self.enabled = enabled
        #: set by the monitor when this report's rising-edge breaches
        #: warrant an incident bundle (the scheduler writes it)
        self.incident: dict[str, Any] | None = None

    @property
    def status(self) -> str:
        """``ok``/``warn``/``critical`` (``disabled`` without a monitor)."""
        if not self.enabled:
            return "disabled"
        worst = "ok"
        for finding in self.findings:
            if _SEVERITY_RANK[finding.severity] > _SEVERITY_RANK[worst]:
                worst = finding.severity
        return worst

    @property
    def healthy(self) -> bool:
        return self.status in ("ok", "disabled")

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "findings": [finding.to_dict() for finding in self.findings],
            "window": self.window.to_dict() if self.window is not None else None,
        }

    def format_line(self) -> str:
        """One-line summary (the dashboard's footer)."""
        if not self.enabled:
            return "disabled (monitor_enabled=False or monitor_interval=0)"
        if not self.findings:
            return "OK"
        return f"{self.status.upper()} — " + "; ".join(
            finding.message for finding in self.findings
        )

    def format(self) -> str:
        """Multi-line rendering (shell ``\\health``)."""
        lines = [f"health: {self.status}"]
        for finding in self.findings:
            lines.append(f"  [{finding.severity}] {finding.rule}: {finding.message}")
        if self.enabled and not self.findings:
            lines.append("  (no findings)")
        return "\n".join(lines)


class ThresholdRule:
    """An SLO check: fire when the series crosses an absolute limit."""

    severity = "critical"

    def __init__(
        self,
        name: str,
        extract: Callable[[Any], float | None],
        threshold: float,
        direction: str = "above",
        unit: str = "",
    ) -> None:
        self.name = name
        self.extract = extract
        self.threshold = threshold
        self.direction = direction
        self.unit = unit

    def evaluate(self, window: Any) -> HealthFinding | None:
        value = self.extract(window)
        if value is None:
            return None
        breached = (
            value >= self.threshold
            if self.direction == "above"
            else value < self.threshold
        )
        if not breached:
            return None
        relation = ">=" if self.direction == "above" else "<"
        return HealthFinding(
            self.name,
            self.severity,
            value,
            self.threshold,
            f"{self.name} {value:.3f}{self.unit} {relation} "
            f"SLO {self.threshold:.3f}{self.unit}",
        )

    observe = evaluate  # threshold rules carry no state to update


class DriftRule:
    """An EWMA-baseline drift detector over one window series.

    ``direction="up"`` fires when the value exceeds ``baseline * factor``
    (q-error, regret, queue wait); ``direction="down"`` fires when it
    falls below ``baseline / factor`` (hit-rate collapse). The first
    ``warmup`` observed windows only feed the baseline. ``floor`` mutes
    breaches whose absolute value is still too small to matter (a q-error
    "tripling" from 1.0 to 1.05 is noise, not drift).
    """

    severity = "warn"

    def __init__(
        self,
        name: str,
        extract: Callable[[Any], float | None],
        factor: float = 2.0,
        alpha: float = 0.2,
        warmup: int = 3,
        direction: str = "up",
        floor: float = 0.0,
    ) -> None:
        self.name = name
        self.extract = extract
        self.factor = max(1.0 + 1e-9, factor)
        self.alpha = alpha
        self.warmup = max(1, warmup)
        self.direction = direction
        self.floor = floor
        self.baseline: float | None = None
        #: windows that contributed a value (None windows don't count)
        self.observed = 0
        self.breaches = 0

    def _breach(self, value: float) -> HealthFinding | None:
        assert self.baseline is not None
        if self.direction == "up":
            limit = self.baseline * self.factor
            if value > limit and value > self.floor:
                return HealthFinding(
                    self.name,
                    self.severity,
                    value,
                    self.baseline,
                    f"{self.name} {value:.3f} drifted above "
                    f"{self.factor:.1f}x baseline {self.baseline:.3f}",
                )
        else:
            limit = self.baseline / self.factor
            if value < limit and (self.floor <= 0.0 or value < self.floor):
                return HealthFinding(
                    self.name,
                    self.severity,
                    value,
                    self.baseline,
                    f"{self.name} {value:.3f} collapsed below "
                    f"1/{self.factor:.1f}x baseline {self.baseline:.3f}",
                )
        return None

    def evaluate(self, window: Any) -> HealthFinding | None:
        """Stateless check against the current baseline (``report()``
        peeks without polluting detector state)."""
        value = self.extract(window)
        if value is None or self.baseline is None or self.observed < self.warmup:
            return None
        return self._breach(value)

    def observe(self, window: Any) -> HealthFinding | None:
        """Stateful per-window update: check, then fold the value into
        the EWMA baseline (breaching values too — see the module
        docstring's transition-detection stance)."""
        value = self.extract(window)
        if value is None:
            return None
        finding = None
        if self.baseline is None:
            self.baseline = value
        else:
            if self.observed >= self.warmup:
                finding = self._breach(value)
            self.baseline += self.alpha * (value - self.baseline)
        self.observed += 1
        if finding is not None:
            self.breaches += 1
        return finding


class HealthMonitor:
    """Runs every rule over each sampled window; builds incident bundles."""

    def __init__(self, timeseries: Any, config: Any) -> None:
        self.timeseries = timeseries
        self.config = config
        alpha = config.drift_baseline_alpha
        factor = config.drift_factor
        warmup = config.drift_min_intervals
        #: the drift detectors, ISSUE order: q-error drift, hit-rate
        #: collapse, regret spikes, queue-wait saturation
        self.drift_rules: list[DriftRule] = [
            DriftRule(
                "qerror-drift",
                lambda w: w.qerror_p50,
                factor=factor,
                alpha=alpha,
                warmup=warmup,
                floor=1.2,
            ),
            DriftRule(
                "hit-rate-collapse",
                lambda w: w.cache_hit_rate,
                factor=factor,
                alpha=alpha,
                warmup=warmup,
                direction="down",
            ),
            DriftRule(
                "regret-spike",
                lambda w: w.regret_mass,
                factor=factor,
                alpha=alpha,
                warmup=warmup,
                floor=1.0,
            ),
            DriftRule(
                "queue-wait-saturation",
                lambda w: w.queue_wait_p95,
                factor=factor,
                alpha=alpha,
                warmup=warmup,
                floor=1.0,
            ),
        ]
        self.slo_rules: list[ThresholdRule] = []
        if config.slo_p95_latency_ms > 0:
            self.slo_rules.append(
                ThresholdRule(
                    "slo-p95-latency",
                    lambda w: (
                        w.p95_latency * 1e3 if w.p95_latency is not None else None
                    ),
                    config.slo_p95_latency_ms,
                    unit="ms",
                )
            )
        if config.slo_min_hit_rate > 0:
            self.slo_rules.append(
                ThresholdRule(
                    "slo-hit-rate",
                    lambda w: w.cache_hit_rate,
                    config.slo_min_hit_rate,
                    direction="below",
                )
            )
        if config.slo_max_queue_wait_p95 > 0:
            self.slo_rules.append(
                ThresholdRule(
                    "slo-queue-wait",
                    lambda w: w.queue_wait_p95,
                    config.slo_max_queue_wait_p95,
                )
            )
        if config.slo_regret_mass > 0:
            self.slo_rules.append(
                ThresholdRule(
                    "slo-regret-mass",
                    lambda w: w.regret_mass if w.regret_mass > 0 else None,
                    config.slo_regret_mass,
                )
            )
        #: per-rule breach counts (exposed as labeled Prometheus counters)
        self.breaches: dict[str, int] = {}
        #: incident bundles assembled (== flight-recorder incident writes
        #: when a flight sink is attached)
        self.incidents = 0
        #: rules breached in the previous window (rising-edge dedup: a
        #: rule must clear before it can open a new incident)
        self._active: set[str] = set()
        self._last_report: HealthReport | None = None

    # -- evaluation -----------------------------------------------------------

    def observe(self, window: Any) -> HealthReport:
        """Evaluate one freshly sampled window (the scheduler's hook).

        Updates drift baselines and breach counters; on a rising edge,
        attaches an incident bundle to the returned report for the
        scheduler to write through the flight-recorder sink.
        """
        findings: list[HealthFinding] = []
        for rule in self.drift_rules + self.slo_rules:
            finding = rule.observe(window)
            if finding is not None:
                findings.append(finding)
                self.breaches[finding.rule] = self.breaches.get(finding.rule, 0) + 1
        report = HealthReport(findings, window)
        breached_now = {finding.rule for finding in findings}
        new_breaches = breached_now - self._active
        self._active = breached_now
        if new_breaches:
            self.incidents += 1
            report.incident = self._bundle(report, sorted(new_breaches))
        self._last_report = report
        return report

    def report(self) -> HealthReport:
        """The latest verdict without touching detector state.

        Re-evaluates the newest window against current baselines when no
        report exists yet (e.g. ``server.health()`` before any periodic
        sample fired).
        """
        if self._last_report is not None:
            return self._last_report
        window = self.timeseries.latest()
        if window is None:
            return HealthReport([], None)
        findings = [
            finding
            for rule in self.drift_rules + self.slo_rules
            if (finding := rule.evaluate(window)) is not None
        ]
        return HealthReport(findings, window)

    # -- incidents ------------------------------------------------------------

    def _bundle(self, report: HealthReport, new_rules: list[str]) -> dict[str, Any]:
        """The incident record: everything a post-mortem needs, one JSONL
        line through the flight-recorder path."""
        decisions = self.timeseries.metrics.decisions
        return {
            "kind": "incident",
            "rules": new_rules,
            "status": report.status,
            "findings": [finding.to_dict() for finding in report.findings],
            "window": report.window.to_dict() if report.window is not None else None,
            "recent_windows": [
                window.to_dict() for window in self.timeseries.windows()[-12:]
            ],
            "top_queries": self.timeseries.top_queries(),
            "decisions": {
                "counts": dict(decisions.decisions),
                "regret": {
                    "count": decisions.regret_hist.count,
                    "sum": round(decisions.regret_hist.sum, 3),
                    "p95": round(decisions.regret_hist.p95, 3),
                },
                "qerror_p95": round(decisions.qerror_hist.p95, 3),
            },
        }

"""Span-based execution tracing.

The paper shipped its "dynamic execution metrics" to the user community as
part of the product; this module is the timeline half of that surface. A
:class:`Tracer` records a tree of :class:`Span` objects — query →
retrieval → tactic → scan / final-stage / strategy-switch — each carrying
wall time, engine-step counts, and cost-meter totals, plus every
:class:`~repro.engine.metrics.TraceEvent` emitted while the span was
current. A finished query therefore yields a complete timeline tree that
EXPLAIN ANALYZE renders next to the static plan and ``to_json`` exports to
a JSONL sink.

Two attachment disciplines coexist:

* **Stack spans** (:meth:`Tracer.begin` / :meth:`Tracer.end`) for strictly
  nested scopes — the retrieval, its tactic, its final-stage phase. These
  live in generator frames, so ``end`` runs in ``finally`` blocks and the
  stack unwinds in LIFO order even under mid-flight cancellation.
* **Open spans** (:meth:`Tracer.open`) for work that overlaps — the
  engine's concurrently-stepped processes (a foreground scan and a
  background Jscan are both *running* inside one tactic) and the
  scheduler's per-quantum and admission-wait spans. They attach as
  children of the current stack top (or an explicit parent) without
  joining the stack, and the owner calls :meth:`Span.finish`.

Tracing must cost nothing when off: :data:`NULL_TRACER` is a no-op
implementation shared by every untraced retrieval, so the instrumented
code paths pay one dynamic dispatch per span site (per scan, not per row).
``benchmarks/bench_trace_overhead.py`` holds the disabled path to a <2%
throughput budget.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Iterator, TextIO

from repro.obs.audit import AuditLog, NULL_AUDIT


class Span:
    """One timed node of the execution timeline tree."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "events",
        "start_time",
        "end_time",
        "_clock",
    )

    def __init__(
        self, name: str, attrs: dict[str, Any], clock: Callable[[], float]
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list["Span"] = []
        self.events: list[Any] = []
        self._clock = clock
        self.start_time = clock()
        self.end_time: float | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` ran."""
        return self.end_time is not None

    def finish(self, clock: Callable[[], float] | None = None, **attrs: Any) -> "Span":
        """Close the span, folding ``attrs`` (steps, cost, …) in. Idempotent:
        a second finish keeps the first end time but still merges attrs.
        Ends on the clock the span started on unless one is passed."""
        if self.end_time is None:
            self.end_time = (clock or self._clock)()
        if attrs:
            self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        """Wall-clock seconds from start to finish (0.0 while open)."""
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    # -- querying ----------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (including self) with the given name."""
        return [span for span in self.walk() if span.name == name]

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering of the subtree."""
        events = [
            event.to_dict() if hasattr(event, "to_dict") else str(event)
            for event in self.events
        ]
        out: dict[str, Any] = {
            "name": self.name,
            "duration_s": round(self.duration, 9),
            "attrs": dict(self.attrs),
        }
        if events:
            out["events"] = events
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def format(self, indent: int = 0, exclude: tuple[str, ...] = ()) -> str:
        """Multi-line human-readable tree (EXPLAIN ANALYZE's right column).

        ``exclude`` prunes whole subtrees by span name — e.g. the
        per-quantum scheduling spans, which would swamp a rendered timeline
        (they stay in the exported JSON).
        """
        attrs = " ".join(f"{key}={value}" for key, value in self.attrs.items())
        line = "  " * indent + self.name
        if attrs:
            line += f" [{attrs}]"
        line += f" ({self.duration * 1e3:.2f}ms)"
        lines = [line]
        for event in self.events:
            lines.append("  " * (indent + 1) + f"* {event}")
        for child in self.children:
            if child.name in exclude:
                continue
            lines.append(child.format(indent + 1, exclude))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "open"
        return f"<Span {self.name!r} {state} children={len(self.children)}>"


class Tracer:
    """Records one query's span tree.

    Created per traced query (by the scheduler's sampling decision, or
    forced by EXPLAIN ANALYZE) and threaded down to every
    :class:`~repro.engine.metrics.RetrievalTrace` the query produces, so
    event emission and span creation share one tree.
    """

    enabled = True

    def __init__(
        self,
        name: str = "query",
        clock: Callable[[], float] = time.perf_counter,
        audit: Any | None = None,
        **attrs: Any,
    ) -> None:
        self._clock = clock
        self.root = Span(name, attrs, clock)
        self._stack: list[Span] = [self.root]
        #: the query's decision audit log (:class:`repro.obs.audit.AuditLog`);
        #: defaults to the no-op :data:`~repro.obs.audit.NULL_AUDIT` and is
        #: mirrored onto every RetrievalTrace the query produces
        self.audit = audit if audit is not None else NULL_AUDIT

    # -- the span stack ----------------------------------------------------

    @property
    def current(self) -> Span:
        """The innermost open stack span (the attachment point)."""
        return self._stack[-1]

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a nested span and make it current. Pair with :meth:`end`
        in a ``finally`` block (generator unwinding keeps LIFO order)."""
        span = Span(name, attrs, self._clock)
        self.current.children.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Finish a stack span. Defensive: any deeper spans still open
        (e.g. skipped by an exception) are finished and popped too."""
        while len(self._stack) > 1:
            top = self._stack.pop()
            top.finish(self._clock)
            if top is span:
                break
        return span.finish(self._clock, **attrs)

    # -- overlapping work --------------------------------------------------

    def open(self, name: str, parent: Span | None = None, **attrs: Any) -> Span:
        """Attach a span under ``parent`` (default: the current stack span)
        *without* pushing it on the stack. Used for concurrently-stepped
        processes and scheduler quanta, whose lifetimes overlap; the owner
        calls :meth:`Span.finish`."""
        span = Span(name, attrs, self._clock)
        (parent or self.current).children.append(span)
        return span

    def mark(self, name: str, **attrs: Any) -> Span:
        """A zero-duration boundary span (e.g. a strategy switch)."""
        return self.open(name, **attrs).finish(self._clock)

    # -- events ------------------------------------------------------------

    def event(self, event: Any) -> None:
        """Attach an emitted trace event to the current span."""
        self.current.events.append(event)

    # -- lifecycle & export ------------------------------------------------

    def finish(self, **attrs: Any) -> Span:
        """Close the root (and any spans still open above it)."""
        return self.end(self.root, **attrs)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering of the whole tree."""
        return self.root.to_dict()

    def to_json(self, indent: int | None = None) -> str:
        """The whole tree as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, default=str)


class _NullSpan(Span):
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("<null>", {}, lambda: 0.0)

    def finish(self, clock=None, **attrs: Any) -> "Span":
        return self

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "duration_s": 0.0, "attrs": {}}


class NullTracer(Tracer):
    """A tracer that records nothing.

    Shared by every untraced query so the instrumented call sites stay
    unconditional — the per-site cost is one no-op method call.
    """

    enabled = False
    audit = NULL_AUDIT

    def __init__(self) -> None:
        self._null = _NullSpan()
        self.root = self._null
        self._stack = [self._null]
        self._clock = lambda: 0.0

    def begin(self, name: str, **attrs: Any) -> Span:
        return self._null

    def end(self, span: Span, **attrs: Any) -> Span:
        return self._null

    def open(self, name: str, parent: Span | None = None, **attrs: Any) -> Span:
        return self._null

    def mark(self, name: str, **attrs: Any) -> Span:
        return self._null

    def event(self, event: Any) -> None:
        pass

    def finish(self, **attrs: Any) -> Span:
        return self._null


#: Tracer used when tracing is off. All methods are no-ops; sharing one
#: instance (and one null span) is safe.
NULL_TRACER = NullTracer()


class AuditOnlyTracer(NullTracer):
    """Carries a live :class:`~repro.obs.audit.AuditLog` with no span tree.

    With ``audit_enabled`` on but the query neither sampled for tracing
    nor an EXPLAIN, the scheduler previously paid for a full span
    timeline (perf_counter clocks, one Span per quantum) just to ferry
    the audit log to retirement. This tracer keeps every span operation a
    no-op while ``tracer.audit`` records decisions normally — the bulk of
    the measured audit-on overhead came from the spans, not the audit.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self.audit = AuditLog()


def should_sample(sequence: int, rate: float) -> bool:
    """Deterministic sampling decision for the ``sequence``-th query.

    ``rate`` is the configured ``trace_sample_rate`` in [0, 1]. The rule
    admits exactly ``floor(n * rate)`` of the first ``n`` queries — evenly
    spread, no RNG, reproducible across runs (``rate=1`` traces everything,
    ``rate=0`` nothing).
    """
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    return int(sequence * rate) != int((sequence - 1) * rate)


class JsonlSink:
    """Writes finished span trees (or any JSON-able records) as JSON Lines.

    Accepts a path (opened lazily, append mode) or any writable text
    stream. The scheduler calls :meth:`write` once per retired traced
    query (and the flight recorder once per captured slow/regretted
    query); each line is one complete record.

    Records are never truncated mid-line: the JSON document is fully
    serialized *before* anything touches the stream, every line is flushed
    as soon as it is written, and the sink is a context manager whose
    ``__exit__``/:meth:`close` flushes on the way out — including when the
    owner unwinds through an in-flight exception or scheduler shutdown.

    Path-backed sinks support size-capped rotation so always-on flight /
    trace / incident sinks can't grow unbounded: when ``max_bytes > 0``
    and a written line pushes the file past the cap, the file is renamed
    to ``<path>.1`` (existing ``.1`` → ``.2``, …, dropping ``.<keep>``)
    and a fresh file is started. Rotation happens on line boundaries only
    — a record is never split across files. Stream-backed sinks ignore
    the cap (the caller owns the stream).
    """

    def __init__(self, target: str | TextIO, max_bytes: int = 0, keep: int = 3) -> None:
        self._path = target if isinstance(target, str) else None
        self._stream: TextIO | None = None if isinstance(target, str) else target
        self.max_bytes = max_bytes if self._path is not None else 0
        self.keep = max(1, keep)
        self.written = 0
        self.rotations = 0
        self.closed = False
        self._bytes = 0

    def _open(self) -> TextIO:
        assert self._path is not None
        stream = open(self._path, "a")
        # append mode: pick up the existing file's size so a reopened
        # sink keeps honouring the cap
        self._bytes = stream.tell()
        return stream

    def _rotate(self) -> None:
        """Shift ``path.{n}`` → ``path.{n+1}`` (dropping the oldest) and
        restart the live file. Called with the live stream closed."""
        assert self._path is not None
        for index in range(self.keep - 1, 0, -1):
            older = f"{self._path}.{index}"
            if os.path.exists(older):
                os.replace(older, f"{self._path}.{index + 1}")
        os.replace(self._path, f"{self._path}.1")
        self.rotations += 1
        self._bytes = 0

    def write(self, tree: dict[str, Any]) -> None:
        """Append one record as a JSON line (serialize-then-write: a
        serialization error leaves the file without a partial line)."""
        if self.closed:
            raise ValueError("write to a closed JsonlSink")
        line = json.dumps(tree, default=str)
        if self._stream is None:
            assert self._path is not None
            self._stream = self._open()
        if (
            self.max_bytes > 0
            and self._bytes > 0
            and self._bytes + len(line) + 1 > self.max_bytes
        ):
            self._stream.close()
            self._rotate()
            self._stream = self._open()
        self._stream.write(line + "\n")
        self._stream.flush()
        self._bytes += len(line) + 1
        self.written += 1

    def flush(self) -> None:
        """Flush the underlying stream (idempotent; safe when unopened)."""
        if self._stream is not None and not self._stream.closed:
            self._stream.flush()

    def close(self) -> None:
        """Flush, then close the underlying file if this sink opened it
        (external streams are flushed but stay open — the caller owns
        them). Idempotent."""
        if self.closed:
            return
        self.closed = True
        if self._stream is None:
            return
        if not self._stream.closed:
            self._stream.flush()
            if self._path is not None:
                self._stream.close()
        if self._path is not None:
            self._stream = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

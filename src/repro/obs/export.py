"""Prometheus-text-format exposition helpers.

Renders gauges/counters/histograms in the Prometheus exposition format
(version 0.0.4): ``# HELP`` / ``# TYPE`` headers, label sets, and the
``_bucket``/``_sum``/``_count`` triplet with cumulative ``le`` buckets for
histograms. :meth:`repro.server.MetricsRegistry.expose_text` composes
these into the full scrape payload; the shell's ``\\metrics prom`` view
and any scraper consume it.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.obs.hist import LogHistogram


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _format_labels(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    escaped = ",".join(
        f'{key}="{str(value).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for key, value in labels.items()
    )
    return "{" + escaped + "}"


class PrometheusText:
    """Accumulates one exposition payload, deduplicating metric headers."""

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._lines: list[str] = []
        self._declared: set[str] = set()

    def _declare(self, name: str, kind: str, help_text: str) -> str:
        full = f"{self.prefix}_{name}"
        if full not in self._declared:
            self._lines.append(f"# HELP {full} {help_text}")
            self._lines.append(f"# TYPE {full} {kind}")
            self._declared.add(full)
        return full

    def counter(
        self,
        name: str,
        value: float,
        help_text: str,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        """Emit one counter sample."""
        full = self._declare(name, "counter", help_text)
        self._lines.append(f"{full}{_format_labels(labels)} {_format_value(value)}")

    def gauge(
        self,
        name: str,
        value: float,
        help_text: str,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        """Emit one gauge sample."""
        full = self._declare(name, "gauge", help_text)
        self._lines.append(f"{full}{_format_labels(labels)} {_format_value(value)}")

    def histogram(
        self,
        name: str,
        hist: LogHistogram,
        help_text: str,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        """Emit one histogram: cumulative ``le`` buckets, sum, and count.

        Only non-empty buckets are materialized (plus the mandatory
        ``+Inf`` bucket), keeping the payload proportional to the data
        rather than to the fixed 52-bucket layout.
        """
        full = self._declare(name, "histogram", help_text)
        base = dict(labels or {})
        cumulative = 0
        for bound, count in hist.buckets():
            if bound == math.inf:
                continue
            cumulative += count
            bucket_labels = dict(base, le=_format_value(bound))
            self._lines.append(
                f"{full}_bucket{_format_labels(bucket_labels)} {cumulative}"
            )
        inf_labels = dict(base, le="+Inf")
        self._lines.append(f"{full}_bucket{_format_labels(inf_labels)} {hist.count}")
        self._lines.append(f"{full}_sum{_format_labels(base)} {_format_value(hist.sum)}")
        self._lines.append(f"{full}_count{_format_labels(base)} {hist.count}")

    def quantiles(
        self,
        name: str,
        hist: LogHistogram,
        help_text: str,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        """Emit p50/p95/p99 gauges derived from a histogram, so percentile
        latency is directly visible in the scrape without PromQL."""
        base = dict(labels or {})
        for quantile, value in (
            ("0.5", hist.p50),
            ("0.95", hist.p95),
            ("0.99", hist.p99),
        ):
            self.gauge(name, value, help_text, dict(base, quantile=quantile))

    def render(self) -> str:
        """The complete exposition payload."""
        return "\n".join(self._lines) + ("\n" if self._lines else "")

"""Observability: span tracing, log2 histograms, metrics exposition.

The paper notes that its "dynamic execution metrics have been available to
the user community since version 4.0" — observability of the competition's
decisions is part of the artifact. This package provides the three
surfaces layered on top of the flat per-retrieval counters:

* :mod:`repro.obs.trace` — the span timeline (query → retrieval → tactic →
  scan / final-stage / strategy-switch), its JSON export, sampling, and the
  :class:`JsonlSink`;
* :mod:`repro.obs.hist` — fixed-bucket log2 histograms with exact sums and
  p50/p95/p99 accessors;
* :mod:`repro.obs.export` — Prometheus-text-format rendering used by
  :meth:`repro.server.MetricsRegistry.expose_text`;
* :mod:`repro.obs.explain` — the EXPLAIN ANALYZE report combining plan,
  estimate-vs-actual, and the span tree;
* :mod:`repro.obs.audit` — structured decision records (what the optimizer
  chose, over what, and why) and their server-wide aggregation
  (:class:`DecisionMetrics`);
* :mod:`repro.obs.regret` — counterfactual replay of rejected strategies
  on shadow buffer pools, turning decisions into realized regret
  (``EXPLAIN COMPETE`` / ``Connection.audit()``);
* :mod:`repro.obs.timeseries` — continuous interval sampling of the
  server's metrics into ring-buffered :class:`WindowStats` (the ``\\top``
  dashboard's data);
* :mod:`repro.obs.health` — SLO and EWMA-drift rules over those windows,
  producing :class:`HealthReport` verdicts and flight-recorder incident
  bundles.
"""

from repro.obs.audit import (
    NULL_AUDIT,
    AuditLog,
    DecisionKind,
    DecisionMetrics,
    DecisionRecord,
    NullAudit,
    RetrievalAudit,
)
from repro.obs.health import (
    DriftRule,
    HealthFinding,
    HealthMonitor,
    HealthReport,
    ThresholdRule,
)
from repro.obs.hist import LogHistogram
from repro.obs.timeseries import (
    MetricSample,
    SteppingClock,
    TimeSeriesRegistry,
    WindowStats,
    delta_percentile,
    sparkline,
)
from repro.obs.regret import (
    CompeteReport,
    ReplayOutcome,
    RetrievalCompete,
    replay_strategy,
    run_compete,
)
from repro.obs.trace import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    Span,
    Tracer,
    should_sample,
)

__all__ = [
    "AuditLog",
    "CompeteReport",
    "DecisionKind",
    "DecisionMetrics",
    "DecisionRecord",
    "DriftRule",
    "HealthFinding",
    "HealthMonitor",
    "HealthReport",
    "JsonlSink",
    "LogHistogram",
    "MetricSample",
    "NULL_AUDIT",
    "NULL_TRACER",
    "NullAudit",
    "NullTracer",
    "ReplayOutcome",
    "RetrievalAudit",
    "RetrievalCompete",
    "Span",
    "SteppingClock",
    "ThresholdRule",
    "TimeSeriesRegistry",
    "Tracer",
    "WindowStats",
    "delta_percentile",
    "should_sample",
    "sparkline",
    "replay_strategy",
    "run_compete",
]

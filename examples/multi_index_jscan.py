"""Jscan walkthrough: joint scan of three fetch-needed indexes (Section 6).

A PARTS table carries single-column indexes on COLOR, WEIGHT, and SIZE. An
AND-restriction over all three triggers Jscan: ranges are estimated by
descent to split node, indexes are scanned in ascending-selectivity order,
each scan's RID list is filtered by the previous one, and unproductive
scans are killed by the two-stage competition. The full event trace is
printed, then the same query is run through the statically-thresholded
Jscan of [MoHa90] and a plain Tscan for comparison.

Run:  python examples/multi_index_jscan.py
"""

import repro
from repro import col
from repro.engine.mohan_jscan import run_static_jscan
from repro.workloads.scenarios import build_parts_table


def main() -> None:
    conn = repro.connect(buffer_capacity=64)
    db = conn.db
    parts = build_parts_table(db, rows=6000)
    print(f"PARTS: {parts.row_count} rows over {parts.heap.page_count} pages, "
          f"indexes: {', '.join(parts.indexes)}")

    restriction = (
        (col("COLOR").eq(7)) & (col("WEIGHT") <= 200) & (col("SIZE") > 800)
    )
    print("\nrestriction: COLOR = 7 AND WEIGHT <= 200 AND SIZE > 800\n")

    db.cold_cache()
    dynamic = parts.select(where=restriction)
    print(f"dynamic Jscan: {len(dynamic.rows)} rows, {dynamic.execution_io} reads")
    print(dynamic.trace.format())

    db.cold_cache()
    mohan = run_static_jscan(parts, restriction, threshold_fraction=0.10)
    print(f"\n[MoHa90] static Jscan: {len(mohan.rows)} rows, {mohan.io} reads "
          f"({mohan.description})")

    db.cold_cache()
    tscan = parts.select(where=(col("COLOR") >= 0) & restriction)
    # (COLOR >= 0 keeps the same semantics; the point is the cost comparison)
    print(f"\nfor scale, full-table cost is about {parts.heap.page_count} reads")

    print("\nKey events to look for in the trace above:")
    print(" * initial-estimate: descent-to-split-node range estimates")
    print(" * indexes-ordered:  ascending estimated-RID scan order")
    print(" * simultaneous-pair / reordered: adjacent scans racing")
    print(" * scan-abandoned:   two-stage competition killing a scan")
    print(" * filter-built:     the running intersection advancing")


if __name__ == "__main__":
    main()

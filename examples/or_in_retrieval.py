"""The OR/IN extension: union joint scans (Section 8's named direction).

Disjunctive restrictions defeat the paper's AND-scoped Jscan; Section 8
points at "covering ORs" as the next step. This example shows the union
joint scan resolving ORs and IN lists: every disjunct gets a covering
index range, the ranges are scanned in ascending estimated size, RIDs are
unioned with deduplication, and a two-stage competition abandons the whole
arrangement for Tscan when the union projects too large.

Run:  python examples/or_in_retrieval.py
"""

import repro
from repro import col, var
from repro.workloads.scenarios import build_parts_table


def main() -> None:
    conn = repro.connect(buffer_capacity=64)
    db = conn.db
    parts = build_parts_table(db, rows=6000)
    tscan_cost = parts.heap.page_count
    print(f"PARTS: {parts.row_count} rows / {tscan_cost} pages\n")

    # -- a selective OR across two indexes ---------------------------------
    db.cold_cache()
    result = parts.select(
        where=(col("COLOR").eq(9)) | (col("WEIGHT") >= var("W")),
        host_vars={"W": 990},
    )
    print(f"COLOR = 9 OR WEIGHT >= 990 : {len(result.rows):4d} rows, "
          f"{result.execution_io:4d} reads   ({result.description})")

    # -- the same OR with an unselective arm: competition switches ----------
    db.cold_cache()
    result = parts.select(
        where=(col("COLOR").eq(9)) | (col("WEIGHT") >= var("W")),
        host_vars={"W": 50},
    )
    print(f"COLOR = 9 OR WEIGHT >= 50  : {len(result.rows):4d} rows, "
          f"{result.execution_io:4d} reads   ({result.description})")

    # -- IN lists expand to equality disjuncts -------------------------------
    db.cold_cache()
    result = parts.select(where=col("COLOR").in_([2, 9, 17]))
    print(f"COLOR IN (2, 9, 17)        : {len(result.rows):4d} rows, "
          f"{result.execution_io:4d} reads   ({result.description})")

    # -- IN distributed over a conjunction with an unindexed term ------------
    # (rare colors: the union stays small enough to beat the table scan)
    db.cold_cache()
    result = parts.select(
        where=(col("COLOR").in_([17, 19])) & (col("PRICE") > 5000)
    )
    print(f"COLOR IN (17,19), PRICE>5k : {len(result.rows):4d} rows, "
          f"{result.execution_io:4d} reads   ({result.description})")

    # -- trace of a union run -------------------------------------------------
    db.cold_cache()
    result = parts.select(where=(col("COLOR").eq(9)) | (col("SIZE") > 995))
    print("\ntrace of COLOR = 9 OR SIZE > 995:")
    print(result.trace.format())
    print()
    print(result.summary())


if __name__ == "__main__":
    main()

"""Section 4's motivating scenario: host variables defeat static plans.

``select * from FAMILIES where AGE >= :A1`` with :A1 taking values 0 and
200 delivers all or no records in two different runs — "a correct choice
between the sequential and index retrieval strategies can only be done
dynamically on a per-run basis".

This example freezes a System R-style static plan once, then runs both it
and the dynamic engine across a sweep of :A1 bindings, printing the
physical I/O each pays.

Run:  python examples/host_variable_skew.py
"""

import repro
from repro import col, var
from repro.engine.static_optimizer import StaticOptimizer
from repro.workloads.scenarios import build_families_table


def main() -> None:
    conn = repro.connect(buffer_capacity=48)
    db = conn.db
    families = build_families_table(db, rows=4000)
    query = col("AGE") >= var("A1")

    optimizer = StaticOptimizer(families)
    # plan A: compiled blind (host variable unknown -> magic-number guess)
    blind_plan = optimizer.compile(query)
    # plan B: compiled for a "representative" selective binding, as programs
    # that embed typical constants effectively do
    tuned_plan = optimizer.compile(col("AGE") >= 118)

    print(f"table: {families.row_count} rows over {families.heap.page_count} pages")
    print(f"static plan, compiled blind : {blind_plan.describe()}")
    print(f"static plan, tuned for >=118: {tuned_plan.describe()}")
    print()
    print(
        f"{'A1':>5} {'rows':>6} {'blind I/O':>10} {'tuned I/O':>10} "
        f"{'dynamic I/O':>12}  dynamic strategy"
    )

    for binding in (0, 30, 60, 90, 110, 118, 200):
        db.cold_cache()
        blind_run = optimizer.execute(blind_plan, query, {"A1": binding})
        db.cold_cache()
        tuned_run = optimizer.execute(tuned_plan, query, {"A1": binding})
        db.cold_cache()
        dynamic_run = families.select(where=query, host_vars={"A1": binding})
        assert sorted(blind_run.rows) == sorted(dynamic_run.rows)
        assert sorted(tuned_run.rows) == sorted(dynamic_run.rows)
        print(
            f"{binding:>5} {len(dynamic_run.rows):>6} {blind_run.io:>10} "
            f"{tuned_run.io:>10} {dynamic_run.execution_io:>12}  {dynamic_run.description}"
        )

    print(
        "\nEach frozen plan is tolerable near the binding it was costed for and"
        "\ncatastrophic elsewhere (the tuned Fscan pays one random fetch per row"
        "\nat A1=0; the blind Tscan pays a full scan even when nothing matches)."
        "\nThe dynamic engine re-decides per run, so its column never explodes —"
        "\nthe paper's 'few decimal orders' improvement."
    )


if __name__ == "__main__":
    main()

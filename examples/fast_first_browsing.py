"""Fast-first vs total-time optimization goals (Sections 4 and 7).

An interactive user browsing results wants the first screen of rows *now*
(fast-first); a batch report wants the whole answer cheaply (total-time).
This example runs the same restriction under both goals, with and without
early termination, and shows the Section 4 goal-inference rules deciding
goals inside a nested query — the paper's three-table example.

Run:  python examples/fast_first_browsing.py
"""

import repro
from repro import OptimizationGoal, col
from repro.workloads.scenarios import build_multi_index_orders


def main() -> None:
    conn = repro.connect(buffer_capacity=64)
    db = conn.db
    orders = build_multi_index_orders(db, rows=8000)
    restriction = (col("CUSTOMER") <= 25) & (col("AMOUNT") >= 50_000)
    print(f"ORDERS: {orders.row_count} rows over {orders.heap.page_count} pages\n")

    # -- a browsing user: wants 10 rows, then closes the cursor -------------
    db.cold_cache()
    browse = orders.select(
        where=restriction, limit=10, optimize_for=OptimizationGoal.FAST_FIRST
    )
    print(f"fast-first, LIMIT 10 : {len(browse.rows):5d} rows, "
          f"{browse.execution_io:5d} reads   ({browse.description})")

    # -- the same user, but they keep scrolling to the end ------------------
    db.cold_cache()
    scroll = orders.select(where=restriction, optimize_for=OptimizationGoal.FAST_FIRST)
    print(f"fast-first, full     : {len(scroll.rows):5d} rows, "
          f"{scroll.execution_io:5d} reads   ({scroll.description})")

    # -- a batch report: total-time ------------------------------------------
    db.cold_cache()
    batch = orders.select(where=restriction, optimize_for=OptimizationGoal.TOTAL_TIME)
    print(f"total-time, full     : {len(batch.rows):5d} rows, "
          f"{batch.execution_io:5d} reads   ({batch.description})")

    print(
        "\nFast-first pays a premium on the full scroll (its foreground fetches"
        "\nrecords one by one) but wins dramatically when the user stops early."
    )

    # -- goal inference on the paper's nested example ------------------------
    for name, column in (("A", "X"), ("B", "Y"), ("C", "Z")):
        table = conn.create_table(name, [("ID", "int"), (column, "int")])
        for i in range(100):
            table.insert((i, i % 9))
    sql = (
        "select * from A where A.X in ("
        " select distinct Y from B where B.Y in ("
        "  select Z from C limit to 2 rows))"
        " optimize for total time"
    )
    print("\nGoal inference for the paper's nested query:")
    print(conn.explain(sql).text)
    result = conn.execute(sql)
    print(f"\n{result.rowcount} rows, {result.metrics.total_io} physical reads; "
          "per-retrieval goals as executed:")
    for info in result.retrievals:
        print(f"  table {info.table}: {info.goal.value}")


if __name__ == "__main__":
    main()

"""Join-order competition: race left-deep orders, switch mid-flight.

The paper's Figure 4 races scan strategies inside one table; this example
shows the same machinery lifted to join-order selection on a 3-table star
with Zipf-skewed fan-in. A deliberately small pilot budget makes the
mid-flight order switch easy to provoke, and EXPLAIN COMPETE then replays
every rejected order cold-for-cold and prices the decision in realized
regret.

Run:  python examples/join_competition.py
"""

import numpy as np

import repro
from repro.config import DEFAULT_CONFIG
from repro.workloads.generators import uniform_ints, zipf_ints

SQL = (
    "select o.OID, c.REGION, i.KIND from ORDERS as o "
    "join CUSTOMERS as c on o.CUST = c.CID "
    "join ITEMS as i on o.ITEM = i.IID "
    "where c.REGION = 1 and i.KIND <= 3"
)


def build(conn: repro.Connection) -> None:
    rng = np.random.default_rng(11)
    db = conn.db
    customers = db.create_table("CUSTOMERS", [("CID", "int"), ("REGION", "int")])
    customers.insert_many((i, i % 5) for i in range(150))
    customers.create_index("IX_CID", ["CID"], unique=True)
    items = db.create_table("ITEMS", [("IID", "int"), ("KIND", "int")])
    items.insert_many((i, i % 10) for i in range(60))
    items.create_index("IX_IID", ["IID"], unique=True)
    orders = db.create_table("ORDERS", [("OID", "int"), ("CUST", "int"), ("ITEM", "int")])
    custs = zipf_ints(rng, 1200, 150)
    its = uniform_ints(rng, 1200, 0, 59)
    orders.insert_many((i, custs[i], its[i]) for i in range(1200))
    orders.create_index("IX_CUST", ["CUST"])
    for table in (customers, items, orders):
        table.analyze()


def main() -> None:
    # a tiny pilot budget forces the switch rule to act early and visibly
    conn = repro.connect(
        buffer_capacity=128,
        config=DEFAULT_CONFIG.with_(batch_size=8, join_pilot_steps=4),
    )
    build(conn)

    print("-- the plan (order deliberately absent: chosen at run time) --")
    print(conn.explain(SQL).text)

    conn.db.cold_cache()
    result = conn.execute(SQL)
    print(f"\n{result.rowcount} rows, {result.metrics.total_io} physical reads "
          f"(sunk pilot work included)")
    for info in result.retrievals:
        print(f"  {info.table}: {info.result.description}")

    print("\n-- EXPLAIN COMPETE: every rejected order, replayed ----------")
    conn.db.cold_cache()
    report = conn.audit(SQL)
    print(report.to_text())
    switches = conn.metrics.decisions.join_order_switches
    print(f"\nmid-flight join-order switches this session: {switches}")


if __name__ == "__main__":
    main()

"""Tour of the Section 2 selectivity-distribution toolkit.

Renders (as ASCII sparklines) the transformations of Figures 2.1 and 2.2:
AND/OR chains applied to the uniform distribution under different
correlation assumptions, and the degradation of a precise bell estimate.
Also prints the truncated-hyperbola fit errors the paper quotes (1/4, 1/7,
1/23) and the Section 3 competition arithmetic they motivate.

Run:  python examples/selectivity_distributions.py
"""

import numpy as np

from repro.competition.model import (
    LShapedCost,
    sequential_switch_expected_cost,
    simultaneous_expected_cost,
)
from repro.distribution.density import SelectivityDistribution
from repro.distribution.hyperbola import fit_truncated_hyperbola
from repro.distribution.operators import and_c, apply_chain
from repro.distribution.shapes import classify_shape

BARS = " .:-=+*#%@"


def sparkline(distribution, width=60) -> str:
    density = distribution.rebinned(width).density
    top = density.max() or 1.0
    return "".join(BARS[min(int(v / top * (len(BARS) - 1)), len(BARS) - 1)] for v in density)


def show(label: str, distribution) -> None:
    shape = classify_shape(distribution)
    print(f"{label:>12} |{sparkline(distribution)}| "
          f"median={distribution.median():.3f} {shape}")


def main() -> None:
    uniform = SelectivityDistribution.uniform(256)

    print("Figure 2.1 — transformations of the uniform distribution")
    print("(x axis: selectivity 0..1; density rendered as ASCII)\n")
    show("X", uniform)
    for chain in ("&", "&&", "&&&", "|", "||", "&|"):
        show(chain + "X", apply_chain(uniform, chain))
    print("\ncorrelation assumptions for a single AND:")
    for c in (1.0, 0.0, -0.9):
        show(f"&[c={c:+.1f}]X", and_c(uniform, uniform, c))

    print("\nFigure 2.2 — degradation of a precise estimate (bell m=0.2, e=0.005)")
    bell = SelectivityDistribution.bell(0.2, 0.005, 256)
    show("X", bell)
    for chain in ("&", "|", "||", "|||", "&&"):
        show(chain + "X", apply_chain(bell, chain, operand="self"))

    print("\nTruncated-hyperbola fit errors (paper: 1/4, 1/7, 1/23):")
    wide = SelectivityDistribution.uniform(400)
    for n in (1, 2, 3):
        fit = fit_truncated_hyperbola(apply_chain(wide, "&" * n))
        print(f"  {'&'*n}X: relative error {fit.relative_error:.4f} "
              f"(~1/{1/fit.relative_error:.1f}), b={fit.b:.4f}")

    print("\nSection 3 — why L-shapes make competition pay:")
    plan_a = LShapedCost.from_c_and_mean(c=10, mean=100)
    plan_b = LShapedCost.from_c_and_mean(c=8, mean=120)
    m2 = plan_b.conditional_mean_below(plan_b.median())
    print(f"  traditional single-plan expected cost : {plan_a.mean():8.1f}")
    sequential = sequential_switch_expected_cost(m2, plan_b.median(), plan_a.mean())
    print(f"  run-B-then-switch (m2+c2+M1)/2        : {sequential:8.1f}")
    simultaneous = simultaneous_expected_cost(plan_a, plan_b)
    print(f"  simultaneous proportional run (optimal): {simultaneous:8.1f}")

    rng = np.random.default_rng(0)
    samples = np.minimum(plan_a.sample(rng, 4000), plan_b.sample(rng, 4000) * 2 + plan_b.median())
    print(f"  (Monte-Carlo sanity: min-cost envelope mean {samples.mean():.1f})")


if __name__ == "__main__":
    main()

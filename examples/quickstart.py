"""Quickstart: build a table, index it, and watch the dynamic optimizer work.

Run:  python examples/quickstart.py
"""

import repro
from repro import OptimizationGoal, col, var


def main() -> None:
    # one connection = one database + the multi-query scheduler in front
    conn = repro.connect(buffer_capacity=64)
    db = conn.db

    # -- create and fill a table -----------------------------------------
    families = conn.create_table(
        "FAMILIES", [("ID", "int"), ("AGE", "int"), ("INCOME", "int")]
    )
    for i in range(2000):
        families.insert((i, (i * 37) % 120, 20_000 + (i * 997) % 80_000))
    families.create_index("IX_AGE", ["AGE"])

    # -- the paper's motivating query -------------------------------------
    # select * from FAMILIES where AGE >= :A1
    query = col("AGE") >= var("A1")

    for binding in (0, 95, 200):
        db.cold_cache()
        result = families.select(where=query, host_vars={"A1": binding})
        print(
            f"A1={binding:>3}: {len(result.rows):4d} rows, "
            f"{result.execution_io:4d} physical reads, strategy: {result.description}"
        )

    # -- the same query through SQL, with the Rdb/VMS extensions ----------
    db.cold_cache()
    result = conn.execute(
        "select ID, AGE from FAMILIES where AGE >= :A1 "
        "order by AGE limit to 5 rows optimize for fast first",
        {"A1": 100},
    )
    print(f"\nSQL fast-first top-5 ({result.rowcount} rows, "
          f"{result.metrics.total_io} reads):", result.rows)

    # -- dynamic execution metrics -----------------------------------------
    db.cold_cache()
    result = families.select(
        where=query, host_vars={"A1": 110}, optimize_for=OptimizationGoal.TOTAL_TIME
    )
    print("\nExecution trace for A1=110:")
    print(result.trace.format())


if __name__ == "__main__":
    main()

"""Legacy setup shim.

The sandboxed environment has no ``wheel`` package, so PEP 517 editable
installs fail; ``pip install -e . --no-use-pep517`` (or plain
``pip install -e .``, which pip falls back onto) uses this file instead.
Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
